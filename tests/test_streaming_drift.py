"""Concept-drift detectors over the score stream."""

import numpy as np
import pytest

from repro.streaming import (DDMDrift, DriftEvent, PageHinkley,
                             drift_detector_from_state)


def feed(detector, values, start_index=0):
    events = []
    for offset, value in enumerate(values):
        event = detector.update(value, start_index + offset)
        if event is not None:
            events.append(event)
    return events


class TestDDMDrift:
    def test_flags_mean_shift(self):
        rng = np.random.default_rng(0)
        stationary = rng.normal(1.0, 0.1, size=300)
        shifted = rng.normal(4.0, 0.1, size=100)
        detector = DDMDrift(min_samples=30)
        # Warnings may blip on stationary noise (a 2-sigma chart), but
        # drift must not be confirmed before the shift.
        stationary_events = feed(detector, stationary)
        assert [e for e in stationary_events if e.kind == "drift"] == []
        events = feed(detector, shifted, start_index=300)
        drifts = [e for e in events if e.kind == "drift"]
        assert len(drifts) == 1
        event = drifts[0]
        assert event.detector == "ddm"
        assert event.index >= 300            # flagged inside the shift
        assert event.statistic > event.threshold

    def test_warning_precedes_drift_on_gradual_shift(self):
        rng = np.random.default_rng(1)
        ramp = np.concatenate([rng.normal(1.0, 0.05, size=200),
                               1.0 + np.linspace(0.0, 1.0, 300) +
                               rng.normal(0.0, 0.05, size=300)])
        events = feed(DDMDrift(min_samples=30), ramp)
        kinds = [e.kind for e in events]
        assert "drift" in kinds
        assert "warning" in kinds
        assert kinds.index("warning") < kinds.index("drift")

    def test_resets_after_drift_and_can_refire(self):
        rng = np.random.default_rng(2)
        wave = np.concatenate([rng.normal(1.0, 0.1, size=200),
                               rng.normal(5.0, 0.1, size=200),
                               rng.normal(12.0, 0.1, size=200)])
        events = feed(DDMDrift(min_samples=30), wave)
        drifts = [e for e in events if e.kind == "drift"]
        assert len(drifts) >= 2

    def test_quiet_on_stationary_noise(self):
        rng = np.random.default_rng(3)
        events = feed(DDMDrift(min_samples=30),
                      rng.normal(2.0, 0.5, size=2000))
        assert [e for e in events if e.kind == "drift"] == []

    def test_state_round_trip(self):
        rng = np.random.default_rng(4)
        detector = DDMDrift(min_samples=20)
        feed(detector, rng.normal(1.0, 0.2, size=100))
        clone = drift_detector_from_state(detector.state_dict())
        tail = rng.normal(6.0, 0.2, size=50)
        assert feed(detector, tail, 100) == feed(clone, tail, 100)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DDMDrift(warning_level=3.0, drift_level=2.0)
        with pytest.raises(ValueError):
            DDMDrift(min_samples=1)


class TestPageHinkley:
    def test_flags_mean_shift(self):
        rng = np.random.default_rng(5)
        stream = np.concatenate([rng.normal(1.0, 0.1, size=300),
                                 rng.normal(3.0, 0.1, size=100)])
        detector = PageHinkley(delta=0.05, threshold=25.0, min_samples=30)
        events = feed(detector, stream)
        assert len(events) == 1
        assert events[0].kind == "drift"
        assert events[0].detector == "page_hinkley"
        assert events[0].index >= 300

    def test_quiet_on_stationary_noise(self):
        rng = np.random.default_rng(6)
        detector = PageHinkley(delta=0.1, threshold=50.0, min_samples=30)
        assert feed(detector, rng.normal(1.0, 0.3, size=3000)) == []

    def test_state_round_trip(self):
        rng = np.random.default_rng(7)
        detector = PageHinkley(delta=0.02, threshold=10.0, min_samples=10)
        feed(detector, rng.normal(0.5, 0.1, size=80))
        clone = drift_detector_from_state(detector.state_dict())
        tail = rng.normal(2.5, 0.1, size=40)
        assert feed(detector, tail, 80) == feed(clone, tail, 80)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PageHinkley(delta=-0.1)
        with pytest.raises(ValueError):
            PageHinkley(threshold=0.0)


def test_drift_event_fields_serialise():
    event = DriftEvent(index=12, detector="ddm", kind="drift",
                       statistic=3.4, threshold=2.1)
    assert event.index == 12 and event.kind == "drift"


def test_unknown_detector_kind_rejected():
    with pytest.raises(ValueError):
        drift_detector_from_state({"kind": "nope"})
