"""Unit tests for the Tensor class and autograd mechanics."""

import numpy as np
import pytest

from repro.nn import (Tensor, as_tensor, concatenate, is_grad_enabled,
                      no_grad, ones, randn, stack, tensor, where, zeros)


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_from_int_array_promotes_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype == np.float64

    def test_float_array_kept(self):
        t = Tensor(np.zeros(3, dtype=np.float32))
        assert t.dtype == np.float32

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_tensor_copies_data(self):
        source = np.ones(3)
        t = tensor(source)
        source[0] = 99.0
        assert t.data[0] == 1.0

    def test_factory_shapes(self):
        assert zeros(2, 3).shape == (2, 3)
        assert ones((4,)).shape == (4,)
        assert randn(2, 2, rng=np.random.default_rng(0)).shape == (2, 2)

    def test_len_and_size(self):
        t = zeros(5, 2)
        assert len(t) == 5
        assert t.size == 10

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))


class TestArithmetic:
    def test_add(self):
        c = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(c.data, [4.0, 6.0])

    def test_radd_scalar(self):
        c = 1.0 + Tensor([1.0])
        np.testing.assert_allclose(c.data, [2.0])

    def test_sub_and_rsub(self):
        np.testing.assert_allclose((Tensor([3.0]) - 1.0).data, [2.0])
        np.testing.assert_allclose((5.0 - Tensor([3.0])).data, [2.0])

    def test_mul_div(self):
        np.testing.assert_allclose((Tensor([2.0]) * 3.0).data, [6.0])
        np.testing.assert_allclose((Tensor([6.0]) / 3.0).data, [2.0])
        np.testing.assert_allclose((6.0 / Tensor([3.0])).data, [2.0])

    def test_neg_pow(self):
        np.testing.assert_allclose((-Tensor([2.0])).data, [-2.0])
        np.testing.assert_allclose((Tensor([3.0]) ** 2).data, [9.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul_2d(self):
        a = Tensor(np.eye(2) * 2.0)
        b = Tensor([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose((a @ b).data, [[2.0, 4.0], [6.0, 8.0]])

    def test_broadcasting(self):
        c = Tensor(np.ones((2, 3))) + Tensor(np.arange(3.0))
        np.testing.assert_allclose(c.data, [[1, 2, 3], [1, 2, 3]])


class TestBackward:
    def test_scalar_backward_seeds_one(self):
        x = Tensor([2.0, 3.0], requires_grad=True)
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0, 6.0])

    def test_nonscalar_requires_grad_argument(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_explicit_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 3.0).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [3.0, 30.0])

    def test_backward_on_leaf_without_grad_raises(self):
        x = Tensor([1.0])
        with pytest.raises(RuntimeError):
            x.backward()

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        (x * 2).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_sums_paths(self):
        # y = x*2 used twice: dz/dx = 2 + 2.
        x = Tensor([1.0], requires_grad=True)
        y = x * 2.0
        z = (y + y).sum()
        z.backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_broadcast_backward_unbroadcasts(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        np.testing.assert_allclose(b.grad, [2.0, 2.0, 2.0])


class TestNoGrad:
    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        try:
            with no_grad():
                raise ValueError("boom")
        except ValueError:
            pass
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad


class TestShapeOps:
    def test_reshape_roundtrip(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        y = x.reshape(2, 3)
        assert y.shape == (2, 3)
        y.sum().backward()
        assert x.grad.shape == (6,)

    def test_transpose_default_reverses(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert x.transpose().shape == (4, 3, 2)
        assert x.T.shape == (4, 3, 2)

    def test_transpose_axes(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert x.transpose(0, 2, 1).shape == (2, 4, 3)

    def test_getitem_slice(self):
        x = Tensor(np.arange(10.0), requires_grad=True)
        y = x[2:5]
        np.testing.assert_allclose(y.data, [2.0, 3.0, 4.0])
        y.sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_getitem_repeated_index_accumulates(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        y = x[np.array([1, 1, 2])]
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 2.0, 1.0, 0.0])

    def test_concatenate_and_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        c = concatenate([a, b])
        np.testing.assert_allclose(c.data, [1.0, 2.0, 3.0])
        (c * Tensor([1.0, 2.0, 3.0])).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])
        np.testing.assert_allclose(b.grad, [3.0])

    def test_stack(self):
        a, b = Tensor([1.0, 2.0]), Tensor([3.0, 4.0])
        s = stack([a, b], axis=0)
        np.testing.assert_allclose(s.data, [[1.0, 2.0], [3.0, 4.0]])
        s = stack([a, b], axis=1)
        np.testing.assert_allclose(s.data, [[1.0, 3.0], [2.0, 4.0]])


class TestReductionsAndElementwise:
    def test_sum_axis_keepdims(self):
        x = Tensor(np.ones((2, 3)))
        assert x.sum(axis=0).shape == (3,)
        assert x.sum(axis=1, keepdims=True).shape == (2, 1)
        assert float(x.sum().data) == 6.0

    def test_mean(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        np.testing.assert_allclose(x.mean(axis=0).data, [1.5, 2.5, 3.5])
        assert float(x.mean().data) == 2.5

    def test_max(self):
        x = Tensor(np.array([[1.0, 5.0], [3.0, 2.0]]))
        np.testing.assert_allclose(x.max(axis=1).data, [5.0, 3.0])

    def test_sigmoid_extremes_are_stable(self):
        x = Tensor(np.array([-1000.0, 0.0, 1000.0]))
        s = x.sigmoid().data
        assert np.all(np.isfinite(s))
        np.testing.assert_allclose(s, [0.0, 0.5, 1.0], atol=1e-12)

    def test_relu(self):
        x = Tensor([-1.0, 0.0, 2.0])
        np.testing.assert_allclose(x.relu().data, [0.0, 0.0, 2.0])

    def test_clip(self):
        x = Tensor([-2.0, 0.5, 2.0])
        np.testing.assert_allclose(x.clip(-1.0, 1.0).data, [-1.0, 0.5, 1.0])

    def test_abs_sqrt_exp_log(self):
        np.testing.assert_allclose(Tensor([-3.0]).abs().data, [3.0])
        np.testing.assert_allclose(Tensor([9.0]).sqrt().data, [3.0])
        np.testing.assert_allclose(Tensor([0.0]).exp().data, [1.0])
        np.testing.assert_allclose(Tensor([1.0]).log().data, [0.0])

    def test_where_selects(self):
        result = where(np.array([True, False]), Tensor([1.0, 1.0]),
                       Tensor([2.0, 2.0]))
        np.testing.assert_allclose(result.data, [1.0, 2.0])

    def test_copy_inplace(self):
        a = Tensor(np.zeros(3))
        a.copy_(Tensor(np.arange(3.0)))
        np.testing.assert_allclose(a.data, [0.0, 1.0, 2.0])


class TestDtypePolicy:
    """Thread-local dtype policy: float64 training / float32 inference."""

    def test_defaults(self):
        from repro.nn import default_dtype, inference_dtype
        assert default_dtype() == np.float64
        assert inference_dtype() == np.float32

    def test_set_default_dtype_affects_construction(self):
        from repro.nn import default_dtype, set_default_dtype
        set_default_dtype(np.float32)
        try:
            assert Tensor([1.0, 2.0]).dtype == np.float32
            assert default_dtype() == np.float32
        finally:
            set_default_dtype(np.float64)
        assert Tensor([1.0, 2.0]).dtype == np.float64

    def test_float_arrays_keep_their_dtype(self):
        data = np.array([1.0, 2.0], dtype=np.float32)
        assert Tensor(data).dtype == np.float32

    def test_inference_precision_context(self):
        from repro.nn import inference_dtype, inference_precision
        with inference_precision(np.float64):
            assert inference_dtype() == np.float64
            with inference_precision(np.float32):
                assert inference_dtype() == np.float32
            assert inference_dtype() == np.float64
        assert inference_dtype() == np.float32

    def test_non_float_dtypes_rejected(self):
        from repro.nn import set_default_dtype, set_inference_dtype
        with pytest.raises(ValueError):
            set_default_dtype(np.int64)
        with pytest.raises(ValueError):
            set_inference_dtype(np.int32)

    def test_policy_is_thread_local(self):
        import threading
        from repro.nn import inference_dtype, set_inference_dtype
        seen = {}

        def probe():
            seen["before"] = inference_dtype()
            set_inference_dtype(np.float64)
            seen["after"] = inference_dtype()

        set_inference_dtype(np.float64)
        try:
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join(10.0)
            # The worker starts from the module default, not this
            # thread's override, and its own override stays private.
            assert seen["before"] == np.float32
            assert seen["after"] == np.float64
        finally:
            set_inference_dtype(np.float32)
