"""End-to-end invariants of the full pipeline (property-style).

These pin behaviours that follow from the design but are easy to break in
refactors: affine invariance through the z-scaler, label-independence of
training, and paper-values bookkeeping consistency.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CAEConfig, CAEEnsemble, EnsembleConfig
from repro.experiments.paper_values import (PAPER_ABLATION, PAPER_ACCURACY,
                                            PAPER_DIVERSITY,
                                            PAPER_INFERENCE_MS,
                                            PAPER_TRAIN_MINUTES)
from repro.experiments.runner import MODEL_ORDER


def quick_ensemble(seed=0):
    return CAEEnsemble(
        CAEConfig(input_dim=2, embed_dim=8, window=8, n_layers=1),
        EnsembleConfig(n_models=2, epochs_per_model=2,
                       max_training_windows=128, seed=seed))


@pytest.fixture(scope="module")
def base_series():
    rng = np.random.default_rng(5)
    t = np.arange(300)
    series = np.stack([np.sin(2 * np.pi * t / 20),
                       np.cos(2 * np.pi * t / 33)], axis=1)
    return series + 0.05 * rng.standard_normal(series.shape)


class TestAffineInvariance:
    @given(scale=st.floats(0.1, 100.0), shift=st.floats(-50.0, 50.0))
    @settings(max_examples=5, deadline=None)
    def test_scores_invariant_to_affine_transform(self, base_series, scale,
                                                  shift):
        """z-score pre-processing makes the whole pipeline invariant to
        per-dimension affine changes of units (e.g. Celsius→Fahrenheit):
        refitting on the transformed series yields identical scores."""
        original = quick_ensemble().fit(base_series).score(base_series)
        transformed_series = base_series * scale + shift
        transformed = quick_ensemble().fit(transformed_series).score(
            transformed_series)
        np.testing.assert_allclose(original, transformed, rtol=1e-6,
                                   atol=1e-9)

    def test_no_rescale_breaks_the_invariance(self, base_series):
        """Sanity check of the ablation: without re-scaling, unit changes
        change the scores — which is exactly why Table 5 includes the
        'No re-scaling' variant."""
        config = EnsembleConfig(n_models=1, epochs_per_model=2,
                                max_training_windows=128, seed=0,
                                rescale=False)
        cae = CAEConfig(input_dim=2, embed_dim=8, window=8, n_layers=1)
        original = CAEEnsemble(cae, config).fit(base_series)
        scaled_series = base_series * 10.0
        scaled = CAEEnsemble(cae, config).fit(scaled_series)
        assert not np.allclose(original.score(base_series),
                               scaled.score(scaled_series), rtol=1e-3)


class TestLabelIndependence:
    def test_training_never_touches_labels(self, base_series):
        """Unsupervised contract: fit() has no label argument anywhere in
        the public API and scoring depends only on the series."""
        ensemble = quick_ensemble().fit(base_series)
        import inspect
        signature = inspect.signature(CAEEnsemble.fit)
        assert "labels" not in signature.parameters
        scores_a = ensemble.score(base_series)
        scores_b = ensemble.score(base_series)
        np.testing.assert_array_equal(scores_a, scores_b)


class TestPaperValueBookkeeping:
    def test_accuracy_tables_cover_all_models_and_datasets(self):
        expected_datasets = {"ecg", "smd", "msl", "smap", "wadi", "overall"}
        assert set(PAPER_ACCURACY) == expected_datasets
        for dataset, rows in PAPER_ACCURACY.items():
            assert set(rows) == set(MODEL_ORDER), dataset
            for model, metrics in rows.items():
                assert len(metrics) == 5
                assert all(0.0 <= m <= 1.0 for m in metrics), (dataset,
                                                               model)

    # Erratum in the published Table 4: the 'Overall' ROC values of
    # AE-Ensemble (0.6078) and RAE (0.5747) are transposed — each equals
    # the *other* model's per-dataset mean exactly.  We transcribe the
    # table as printed and exempt those two cells here.
    KNOWN_PAPER_ERRATA = {("AE-Ensemble", 4), ("RAE", 4)}

    def test_paper_overall_is_close_to_dataset_mean(self):
        """The paper's 'Overall' block should be (approximately) the mean
        of its five per-dataset blocks — verifies our transcription."""
        datasets = ["ecg", "smd", "msl", "smap", "wadi"]
        for model in MODEL_ORDER:
            for metric_index in range(5):
                if (model, metric_index) in self.KNOWN_PAPER_ERRATA:
                    continue
                mean = np.mean([PAPER_ACCURACY[d][model][metric_index]
                                for d in datasets])
                published = PAPER_ACCURACY["overall"][model][metric_index]
                assert abs(mean - published) < 0.02, (model, metric_index)

    def test_known_errata_are_exactly_transposed(self):
        """The two exempted cells really are each other's dataset means —
        evidence this is a transposition in the paper, not in us."""
        datasets = ["ecg", "smd", "msl", "smap", "wadi"]
        mean_ae = np.mean([PAPER_ACCURACY[d]["AE-Ensemble"][4]
                           for d in datasets])
        mean_rae = np.mean([PAPER_ACCURACY[d]["RAE"][4] for d in datasets])
        assert abs(mean_ae -
                   PAPER_ACCURACY["overall"]["RAE"][4]) < 0.005
        assert abs(mean_rae -
                   PAPER_ACCURACY["overall"]["AE-Ensemble"][4]) < 0.005

    def test_ablation_tables_match_full_model_rows(self):
        """Table 5's 'CAE-Ensemble' row equals Table 3/4's CAE-Ensemble
        row, and 'No ensemble' equals the CAE row — as in the paper."""
        for dataset in ("ecg", "smap"):
            assert PAPER_ABLATION[dataset]["CAE-Ensemble"] == \
                PAPER_ACCURACY[dataset]["CAE-Ensemble"]
            assert PAPER_ABLATION[dataset]["No ensemble"] == \
                PAPER_ACCURACY[dataset]["CAE"]

    def test_diversity_table_claim(self):
        for dataset, rows in PAPER_DIVERSITY.items():
            assert rows["CAE-Ensemble"] > rows["No Diversity"], dataset

    def test_runtime_tables_positive(self):
        for model, rows in PAPER_TRAIN_MINUTES.items():
            assert all(v > 0 for v in rows.values()), model
        for model, rows in PAPER_INFERENCE_MS.items():
            assert all(0 < v < 1 for v in rows.values()), model

    def test_paper_training_ratio_claims(self):
        """CAE trains faster than RAE on every dataset, and the ensemble
        ratio is smaller for the CAE family — the Table 7 claims, checked
        directly on the published numbers."""
        for dataset in PAPER_TRAIN_MINUTES["RAE"]:
            assert PAPER_TRAIN_MINUTES["CAE"][dataset] < \
                PAPER_TRAIN_MINUTES["RAE"][dataset]
            rae_ratio = PAPER_TRAIN_MINUTES["RAE-Ensemble"][dataset] / \
                PAPER_TRAIN_MINUTES["RAE"][dataset]
            cae_ratio = PAPER_TRAIN_MINUTES["CAE-Ensemble"][dataset] / \
                PAPER_TRAIN_MINUTES["CAE"][dataset]
            assert cae_ratio < rae_ratio, dataset
