"""Unsupervised hyperparameter selection (Algorithm 2, median strategy)."""

import numpy as np
import pytest

from repro.core import (CAEConfig, EnsembleConfig, Trial, median_trial,
                        select_hyperparameters)
from repro.core.hyperparams import (DEFAULT_BETA_RANGE, DEFAULT_LAMBDA_RANGE,
                                    DEFAULT_WINDOW_RANGE,
                                    PAPER_SELECTED_HYPERPARAMETERS)


def trial(error, window=8, beta=0.5, lam=1.0):
    return Trial(window=window, beta=beta, lam=lam,
                 reconstruction_error=error)


class TestMedianTrial:
    def test_odd_count_true_median(self):
        trials = [trial(e) for e in (5.0, 1.0, 3.0)]
        assert median_trial(trials).reconstruction_error == 3.0

    def test_even_count_lower_median(self):
        trials = [trial(e) for e in (4.0, 1.0, 3.0, 2.0)]
        assert median_trial(trials).reconstruction_error == 2.0

    def test_single_trial(self):
        assert median_trial([trial(7.0)]).reconstruction_error == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            median_trial([])

    def test_ignores_input_order(self):
        errors = [9.0, 2.0, 5.0, 7.0, 1.0]
        a = median_trial([trial(e) for e in errors])
        b = median_trial([trial(e) for e in reversed(errors)])
        assert a.reconstruction_error == b.reconstruction_error == 5.0


class TestPaperRanges:
    def test_beta_range_matches_section_414(self):
        assert DEFAULT_BETA_RANGE == tuple(i / 10 for i in range(1, 10))

    def test_lambda_range_matches_section_414(self):
        assert DEFAULT_LAMBDA_RANGE == tuple(float(2 ** j) for j in range(7))

    def test_window_range_matches_section_414(self):
        assert DEFAULT_WINDOW_RANGE == tuple(2 ** k for k in range(2, 9))

    def test_paper_table2_values_inside_ranges(self):
        for params in PAPER_SELECTED_HYPERPARAMETERS.values():
            assert params["beta"] in DEFAULT_BETA_RANGE
            assert params["lambda"] in DEFAULT_LAMBDA_RANGE
            assert params["window"] in DEFAULT_WINDOW_RANGE


@pytest.fixture(scope="module")
def selection_result():
    rng = np.random.default_rng(9)
    t = np.arange(320)
    series = np.stack([np.sin(2 * np.pi * t / 20),
                       np.cos(2 * np.pi * t / 32)], axis=1)
    series += 0.05 * rng.standard_normal(series.shape)
    base_cae = CAEConfig(input_dim=2, embed_dim=8, window=8, n_layers=1)
    base_ensemble = EnsembleConfig(n_models=1, epochs_per_model=1,
                                   max_training_windows=64)
    return select_hyperparameters(
        series, base_cae, base_ensemble, n_random_trials=3,
        beta_range=(0.2, 0.5, 0.8), lambda_range=(1.0, 2.0, 4.0),
        window_range=(4, 8, 16), seed=0)


class TestSelectHyperparameters:
    def test_selected_values_within_ranges(self, selection_result):
        assert selection_result.beta in (0.2, 0.5, 0.8)
        assert selection_result.lam in (1.0, 2.0, 4.0)
        assert selection_result.window in (4, 8, 16)

    def test_all_trials_recorded(self, selection_result):
        assert len(selection_result.random_trials) == 3
        assert len(selection_result.beta_sweep) == 3
        assert len(selection_result.lambda_sweep) == 3
        assert len(selection_result.window_sweep) == 3

    def test_errors_are_positive(self, selection_result):
        for t in selection_result.random_trials:
            assert t.reconstruction_error > 0.0

    def test_default_trial_is_median_of_random(self, selection_result):
        expected = median_trial(selection_result.random_trials)
        assert selection_result.default_trial == expected

    def test_selected_beta_is_median_of_sweep(self, selection_result):
        expected = median_trial(selection_result.beta_sweep).beta
        assert selection_result.beta == expected

    def test_selected_window_is_median_of_sweep(self, selection_result):
        expected = median_trial(selection_result.window_sweep).window
        assert selection_result.window == expected

    def test_rejects_1d_series(self):
        with pytest.raises(ValueError):
            select_hyperparameters(np.zeros(50),
                                   CAEConfig(input_dim=1, window=4))
