"""Tests for the telemetry read side (:mod:`repro.obs.exporters`).

The Prometheus rendering is golden-file tested: its output is promised
deterministic (sorted instruments, trimmed cumulative buckets, ``.6g``
numbers) so scrapes diff cleanly across runs — any formatting drift
shows up as a one-line golden diff here.  The JSON snapshot is tested as
a disk round-trip, and the logging bridge line format via a capturing
handler.
"""

import json
import logging
import os

import pytest

from repro.obs import (MetricsRegistry, StructuredFormatter, Tracer,
                       log_metrics, log_spans, render_prometheus,
                       structured_logger, write_snapshot)

GOLDEN = os.path.join(os.path.dirname(__file__), "data",
                      "prometheus_golden.txt")


def make_demo_registry() -> MetricsRegistry:
    """Fixed observations -> byte-stable exposition output."""
    registry = MetricsRegistry()
    registry.counter("repro_demo_requests_total", queue="fast").inc(3)
    registry.counter("repro_demo_requests_total", queue="slow").inc(1)
    registry.gauge("repro_demo_queue_depth").set(2)
    histogram = registry.histogram("repro_demo_latency_seconds", low=1e-3,
                                   high=10.0, buckets_per_decade=3)
    for value in (0.002, 0.004, 0.004, 0.5):
        histogram.observe(value)
    return registry


class TestPrometheus:
    def test_rendering_matches_golden_file(self):
        with open(GOLDEN) as handle:
            golden = handle.read()
        assert render_prometheus(make_demo_registry()) == golden

    def test_golden_file_shape(self):
        """Independent of exact formatting: one # TYPE per metric name,
        cumulative buckets ending in +Inf, _sum/_count present."""
        text = render_prometheus(make_demo_registry())
        lines = text.strip().split("\n")
        types = [line for line in lines if line.startswith("# TYPE")]
        assert types == [
            "# TYPE repro_demo_latency_seconds histogram",
            "# TYPE repro_demo_queue_depth gauge",
            "# TYPE repro_demo_requests_total counter",
        ]
        buckets = [line for line in lines if "_bucket{" in line]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)          # cumulative
        assert buckets[-1].startswith(
            'repro_demo_latency_seconds_bucket{le="+Inf"} 4')
        assert "repro_demo_latency_seconds_sum 0.51" in lines
        assert "repro_demo_latency_seconds_count 4" in lines

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestSnapshotRoundTrip:
    def test_write_snapshot_round_trips_through_json(self, tmp_path):
        registry = make_demo_registry()
        path = tmp_path / "telemetry.json"
        payload = write_snapshot(registry, str(path),
                                 extra_meta={"commit": "abc123"})
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded == payload
        assert loaded["meta"] == {"commit": "abc123"}
        assert loaded["metrics"] == registry.snapshot()
        [latency] = loaded["metrics"]["histograms"]
        assert latency["count"] == 4
        assert latency["p50"] == pytest.approx(0.004, rel=0.3)
        assert latency["buckets"][-1]["count"] == 4


class CapturingHandler(logging.Handler):
    def __init__(self):
        super().__init__()
        self.lines = []
        self.setFormatter(StructuredFormatter())

    def emit(self, record):
        self.lines.append(self.format(record))


class TestLoggingBridge:
    def make_logger(self, name):
        logger = logging.getLogger(name)
        logger.handlers.clear()
        logger.propagate = False
        logger.setLevel(logging.INFO)
        handler = CapturingHandler()
        logger.addHandler(handler)
        return logger, handler

    def test_formatter_renders_sorted_fields(self):
        record = logging.LogRecord("repro.obs", logging.INFO, "x.py", 1,
                                   "swap", None, None)
        record.fields = {"stream": "s one", "lag": 10, "ratio": 0.25}
        line = StructuredFormatter().format(record)
        prefix, _, fields = line.partition(" event=")
        assert prefix.startswith("ts=") and "level=INFO" in prefix
        assert fields == 'swap lag=10 ratio=0.25 stream="s one"'

    def test_log_metrics_emits_one_line_per_instrument(self):
        logger, handler = self.make_logger("test.obs.metrics")
        emitted = log_metrics(make_demo_registry(), logger)
        assert emitted == 4 == len(handler.lines)
        counter_line = next(line for line in handler.lines
                            if "queue=fast" in line)
        assert "type=counter" in counter_line and "value=3" in counter_line
        histogram_line = next(line for line in handler.lines
                              if "type=histogram" in line)
        assert "count=4" in histogram_line and "p50=" in histogram_line

    def test_log_spans_accepts_tracer_or_iterable(self):
        logger, handler = self.make_logger("test.obs.spans")
        tracer = Tracer()
        with tracer.span("refresh", stream="s1"):
            with tracer.span("refresh.build"):
                pass
        assert log_spans(tracer, logger) == 2
        assert log_spans(tracer.finished(), logger) == 2
        build_line = handler.lines[0]
        assert "name=refresh.build" in build_line
        assert "duration_ms=" in build_line and "parent_id=" in build_line

    def test_structured_logger_is_idempotent(self):
        logger = structured_logger("test.obs.idempotent")
        n_handlers = len(logger.handlers)
        again = structured_logger("test.obs.idempotent")
        assert again is logger
        assert len(again.handlers) == n_handlers
