"""Extension modules: repair, ratio estimation, ensemble persistence."""

import numpy as np
import pytest

from repro.core import (CAEConfig, CAEEnsemble, EnsembleConfig,
                        elbow_ratio_estimate, ensemble_reconstruction,
                        estimate_outlier_ratio, gaussian_tail_estimate,
                        interpolate_over_mask, load_ensemble,
                        mad_ratio_estimate, ratio_report, repair_quality,
                        repair_series, save_ensemble)


@pytest.fixture(scope="module")
def clean_series():
    rng = np.random.default_rng(8)
    t = np.arange(500)
    series = np.stack([np.sin(2 * np.pi * t / 25),
                       np.cos(2 * np.pi * t / 40)], axis=1)
    return series + 0.03 * rng.standard_normal(series.shape)


@pytest.fixture(scope="module")
def corrupted(clean_series):
    rng = np.random.default_rng(9)
    corrupted = clean_series.copy()
    positions = rng.choice(np.arange(20, 480), size=15, replace=False)
    for position in positions:
        corrupted[position] += rng.choice([-1.0, 1.0]) * 5.0
    return corrupted, np.sort(positions)


@pytest.fixture(scope="module")
def fitted(clean_series):
    cae = CAEConfig(input_dim=2, embed_dim=16, window=8, n_layers=1)
    config = EnsembleConfig(n_models=2, epochs_per_model=3,
                            max_training_windows=300, seed=0)
    return CAEEnsemble(cae, config).fit(clean_series)


class TestInterpolation:
    def test_interpolates_masked_points(self):
        series = np.arange(10.0).reshape(-1, 1)
        mask = np.zeros(10, dtype=bool)
        mask[4] = True
        series_corrupt = series.copy()
        series_corrupt[4] = 99.0
        repaired = interpolate_over_mask(series_corrupt, mask)
        assert repaired[4, 0] == pytest.approx(4.0)

    def test_leading_run_takes_nearest_clean(self):
        series = np.arange(5.0).reshape(-1, 1)
        mask = np.array([True, True, False, False, False])
        repaired = interpolate_over_mask(series, mask)
        np.testing.assert_allclose(repaired[:2, 0], 2.0)

    def test_all_masked_is_noop(self):
        series = np.arange(5.0).reshape(-1, 1)
        repaired = interpolate_over_mask(series, np.ones(5, dtype=bool))
        np.testing.assert_array_equal(repaired, series)

    def test_none_masked_is_copy(self):
        series = np.arange(5.0).reshape(-1, 1)
        repaired = interpolate_over_mask(series, np.zeros(5, dtype=bool))
        np.testing.assert_array_equal(repaired, series)
        assert repaired is not series


class TestRepair:
    def test_reconstruction_repair_improves_rmse(self, fitted, clean_series,
                                                 corrupted):
        series, _ = corrupted
        result = repair_series(fitted, series, ratio=15 / 500)
        quality = repair_quality(clean_series, series, result.repaired)
        assert quality["improvement"] > 1.5, quality

    def test_interpolation_policy_improves_rmse(self, fitted, clean_series,
                                                corrupted):
        series, _ = corrupted
        result = repair_series(fitted, series, ratio=15 / 500,
                               policy="interpolation")
        quality = repair_quality(clean_series, series, result.repaired)
        assert quality["improvement"] > 1.5, quality

    def test_only_flagged_observations_change(self, fitted, corrupted):
        series, _ = corrupted
        result = repair_series(fitted, series, ratio=15 / 500)
        unchanged = ~result.outlier_mask
        np.testing.assert_array_equal(result.repaired[unchanged],
                                      series[unchanged])

    def test_mask_hits_real_corruption(self, fitted, corrupted):
        series, positions = corrupted
        result = repair_series(fitted, series, ratio=15 / 500)
        flagged = set(np.flatnonzero(result.outlier_mask).tolist())
        hits = sum(1 for p in positions if p in flagged)
        assert hits >= 0.6 * len(positions)

    def test_requires_threshold_or_ratio(self, fitted, corrupted):
        with pytest.raises(ValueError):
            repair_series(fitted, corrupted[0])

    def test_unknown_policy(self, fitted, corrupted):
        with pytest.raises(ValueError):
            repair_series(fitted, corrupted[0], ratio=0.03, policy="magic")

    def test_reconstruction_shape(self, fitted, clean_series):
        reconstruction = ensemble_reconstruction(fitted, clean_series)
        assert reconstruction.shape == clean_series.shape

    def test_reconstruction_tracks_signal(self, fitted, clean_series):
        reconstruction = ensemble_reconstruction(fitted, clean_series)
        rmse = np.sqrt(np.mean((reconstruction - clean_series) ** 2))
        assert rmse < clean_series.std()    # better than predicting mean

    def test_embedding_mode_rejected(self, clean_series):
        cae = CAEConfig(input_dim=2, embed_dim=8, window=8, n_layers=1,
                        reconstruct="embedding")
        ensemble = CAEEnsemble(cae, EnsembleConfig(
            n_models=1, epochs_per_model=1, max_training_windows=50))
        ensemble.fit(clean_series[:100])
        with pytest.raises(ValueError):
            ensemble_reconstruction(ensemble, clean_series[:100])


class TestRatioEstimation:
    @staticmethod
    def synthetic_scores(ratio, n=5000, seed=0):
        rng = np.random.default_rng(seed)
        n_out = int(n * ratio)
        inliers = rng.lognormal(0.0, 0.4, size=n - n_out)
        outliers = rng.lognormal(2.5, 0.3, size=n_out)
        return np.concatenate([inliers, outliers])

    @pytest.mark.parametrize("true_ratio", [0.02, 0.05, 0.1])
    def test_combined_estimate_in_right_ballpark(self, true_ratio):
        scores = self.synthetic_scores(true_ratio)
        estimate = estimate_outlier_ratio(scores)
        assert 0.3 * true_ratio <= estimate <= 3.0 * true_ratio, \
            (true_ratio, estimate)

    def test_mad_robust_to_contamination(self):
        scores = self.synthetic_scores(0.05)
        estimate = mad_ratio_estimate(scores)
        assert 0.0 < estimate < 0.3

    def test_mad_constant_scores(self):
        assert mad_ratio_estimate(np.ones(100)) == 0.0

    def test_elbow_clamped(self):
        scores = np.linspace(0, 1, 200)   # no tail at all
        assert 0.0 <= elbow_ratio_estimate(scores) <= 0.5

    def test_gaussian_tail_without_positives(self):
        assert gaussian_tail_estimate(np.zeros(100)) == 0.0

    def test_report_contains_all_estimators(self):
        scores = self.synthetic_scores(0.05)
        report = ratio_report(scores, true_ratio=0.05)
        assert set(report) == {"mad", "elbow", "gaussian_tail", "combined",
                               "true"}

    def test_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            estimate_outlier_ratio(np.ones(5))

    def test_rejects_nonfinite(self):
        scores = np.ones(50)
        scores[3] = np.inf
        with pytest.raises(ValueError):
            estimate_outlier_ratio(scores)

    def test_on_real_ensemble_scores(self, fitted, corrupted):
        """End to end: estimated ratio from actual detector scores is the
        right order of magnitude (15 planted / 500 = 3%)."""
        series, _ = corrupted
        scores = fitted.score(series)
        estimate = estimate_outlier_ratio(scores)
        assert 0.005 <= estimate <= 0.15


class TestPersistence:
    def test_round_trip_scores_identical(self, fitted, clean_series,
                                         tmp_path):
        directory = str(tmp_path / "ensemble")
        save_ensemble(fitted, directory)
        reloaded = load_ensemble(directory)
        np.testing.assert_array_equal(fitted.score(clean_series),
                                      reloaded.score(clean_series))

    def test_round_trip_preserves_configs(self, fitted, tmp_path):
        directory = str(tmp_path / "ensemble")
        save_ensemble(fitted, directory)
        reloaded = load_ensemble(directory)
        assert reloaded.cae_config == fitted.cae_config
        assert reloaded.config == fitted.config
        assert reloaded.n_models == fitted.n_models

    def test_scaler_preserved(self, fitted, tmp_path):
        directory = str(tmp_path / "ensemble")
        save_ensemble(fitted, directory)
        reloaded = load_ensemble(directory)
        np.testing.assert_array_equal(reloaded.scaler.mean_,
                                      fitted.scaler.mean_)

    def test_unfitted_rejected(self, tmp_path):
        ensemble = CAEEnsemble(CAEConfig(input_dim=2))
        with pytest.raises(ValueError):
            save_ensemble(ensemble, str(tmp_path / "nope"))

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_ensemble(str(tmp_path / "missing"))

    def test_bad_version_raises(self, fitted, tmp_path):
        import json
        import os
        directory = str(tmp_path / "ensemble")
        save_ensemble(fitted, directory)
        manifest_path = os.path.join(directory, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["format_version"] = 999
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ValueError):
            load_ensemble(directory)
