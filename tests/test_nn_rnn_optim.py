"""Tests for the recurrent cells, optimisers and serialization."""

import os

import numpy as np
import pytest

from repro.nn import (Adam, GRUCell, LSTM, LSTMCell, Linear, SGD, Tensor,
                      load_into, load_state_dict, save_state_dict)
from repro.nn.functional import mse_loss


@pytest.fixture
def rng():
    return np.random.default_rng(21)


class TestLSTMCell:
    def test_state_shapes(self, rng):
        cell = LSTMCell(4, 6, rng)
        h, c = cell.initial_state(3)
        h2, c2 = cell(Tensor(np.zeros((3, 4))), (h, c))
        assert h2.shape == (3, 6) and c2.shape == (3, 6)

    def test_forget_bias_initialised_positive(self, rng):
        cell = LSTMCell(4, 6, rng)
        np.testing.assert_allclose(cell.bias.data[6:12], 1.0)

    def test_state_changes_with_input(self, rng):
        cell = LSTMCell(2, 3, rng)
        state = cell.initial_state(1)
        h1, _ = cell(Tensor([[1.0, 0.0]]), state)
        h2, _ = cell(Tensor([[0.0, 1.0]]), state)
        assert not np.allclose(h1.data, h2.data)

    def test_gradient_through_time(self, rng):
        cell = LSTMCell(2, 3, rng)
        h, c = cell.initial_state(2)
        x = Tensor(rng.standard_normal((2, 2)), requires_grad=True)
        for _ in range(5):
            h, c = cell(x, (h, c))
        (h * h).sum().backward()
        assert x.grad is not None and np.any(x.grad != 0)


class TestGRUCell:
    def test_shapes(self, rng):
        cell = GRUCell(4, 6, rng)
        h = cell(Tensor(np.zeros((3, 4))), cell.initial_state(3))
        assert h.shape == (3, 6)

    def test_zero_input_keeps_bounded_state(self, rng):
        cell = GRUCell(2, 3, rng)
        h = cell.initial_state(1)
        for _ in range(50):
            h = cell(Tensor(np.zeros((1, 2))), h)
        assert np.all(np.abs(h.data) <= 1.0)


class TestLSTMModule:
    def test_output_shapes(self, rng):
        lstm = LSTM(3, 5, rng)
        out, (h, c) = lstm(Tensor(np.zeros((2, 7, 3))))
        assert out.shape == (2, 7, 5)
        assert h.shape == (2, 5) and c.shape == (2, 5)

    def test_final_state_matches_last_output(self, rng):
        lstm = LSTM(3, 5, rng)
        out, (h, _) = lstm(Tensor(rng.standard_normal((2, 7, 3))))
        np.testing.assert_allclose(out.data[:, -1, :], h.data)


class TestSGD:
    def test_plain_step(self, rng):
        p = Tensor(np.array([1.0]), requires_grad=True)
        p.grad = np.array([0.5])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95])

    def test_momentum_accumulates(self, rng):
        p = Tensor(np.array([0.0]), requires_grad=True)
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()
        first = p.data.copy()
        p.grad = np.array([1.0])
        opt.step()
        assert (first - p.data) > 1.0   # second step larger: velocity built

    def test_quadratic_convergence(self, rng):
        p = Tensor(np.array([5.0]), requires_grad=True)
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss = (p * p).sum()
            loss.backward()
            opt.step()
        assert abs(p.item()) < 1e-4

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([Tensor([1.0], requires_grad=True)], lr=0.0)

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_first_step_size_is_lr(self):
        # With bias correction, |first step| == lr regardless of grad scale.
        p = Tensor(np.array([0.0]), requires_grad=True)
        opt = Adam([p], lr=0.01)
        p.grad = np.array([1e-4])
        opt.step()
        np.testing.assert_allclose(abs(p.data), 0.01, rtol=1e-4)

    def test_skips_params_without_grad(self):
        p1 = Tensor(np.array([1.0]), requires_grad=True)
        p2 = Tensor(np.array([1.0]), requires_grad=True)
        opt = Adam([p1, p2], lr=0.1)
        p1.grad = np.array([1.0])
        opt.step()
        np.testing.assert_allclose(p2.data, [1.0])

    def test_grad_clip_limits_norm(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        opt = Adam([p], lr=1.0, grad_clip=1.0)
        p.grad = np.full(4, 100.0)
        opt.step()   # would explode without the clip; just assert finite
        assert np.all(np.isfinite(p.data))

    def test_rosenbrock_ish_convergence(self, rng):
        w = Tensor(rng.standard_normal(3), requires_grad=True)
        target = np.array([1.0, -2.0, 0.5])
        opt = Adam([w], lr=0.05)
        for _ in range(500):
            opt.zero_grad()
            loss = ((w - Tensor(target)) ** 2).sum()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-3)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Tensor([1.0], requires_grad=True)], betas=(1.0, 0.9))


class TestSerialization:
    def test_round_trip(self, tmp_path, rng):
        model = Linear(3, 2, rng)
        path = str(tmp_path / "checkpoint.npz")
        save_state_dict(path, model)
        fresh = Linear(3, 2, np.random.default_rng(1234))
        load_into(path, fresh)
        np.testing.assert_array_equal(model.weight.data, fresh.weight.data)
        np.testing.assert_array_equal(model.bias.data, fresh.bias.data)

    def test_load_state_dict_keys(self, tmp_path, rng):
        model = Linear(3, 2, rng)
        path = str(tmp_path / "checkpoint")
        save_state_dict(path + ".npz", model)
        state = load_state_dict(path)      # extension added automatically
        assert set(state) == {"weight", "bias"}

    def test_creates_directories(self, tmp_path, rng):
        path = str(tmp_path / "deep" / "nested" / "model.npz")
        save_state_dict(path, Linear(2, 2, rng))
        assert os.path.exists(path)
