"""Fused batched training vs the per-module reference loop.

The equivalence contract of ``docs/performance.md``: both paths consume
the ensemble RNG identically and train the same Algorithm 1 objective
over the same batches, so with ``fused_training_dtype='float64'`` the
loss trajectories and scores match to rounding error; the default
float32 path agrees within a documented looser tolerance.
"""

import numpy as np
import pytest

from repro.core import CAEConfig, CAEEnsemble, EnsembleConfig
from repro.core.fused_training import FusedEnsembleTrainer


def make_series(dims, length=220, seed=3):
    rng = np.random.default_rng(seed)
    t = np.arange(length)[:, None]
    periods = 17.0 + 6.0 * np.arange(dims)
    series = np.sin(2 * np.pi * t / periods)
    return series + 0.05 * rng.standard_normal(series.shape)


def make_pair(dims, n_models, dtype, **cae_overrides):
    cae_kwargs = dict(input_dim=dims, embed_dim=8, window=8, n_layers=1)
    cae_kwargs.update(cae_overrides)
    cae = CAEConfig(**cae_kwargs)

    def build(fused):
        return CAEEnsemble(cae, EnsembleConfig(
            n_models=n_models, epochs_per_model=2, batch_size=32,
            max_training_windows=96, seed=11, fused_training=fused,
            fused_training_dtype=dtype))

    return build(False), build(True)


def history_rows(ensemble):
    return np.array([[r.loss, r.reconstruction, r.diversity]
                     for r in ensemble.history])


def assert_equivalent(reference, fused, series, rtol):
    ref_rows, fused_rows = history_rows(reference), history_rows(fused)
    assert ref_rows.shape == fused_rows.shape
    np.testing.assert_allclose(fused_rows, ref_rows, rtol=rtol, atol=rtol)
    np.testing.assert_allclose(fused.score(series), reference.score(series),
                               rtol=rtol, atol=rtol)


class TestFloat64Equivalence:
    """float64 compute dtype: same arithmetic as the reference loop."""

    @pytest.mark.parametrize("n_models", [1, 5])
    @pytest.mark.parametrize("dims", [1, 3])
    def test_matrix(self, n_models, dims):
        series = make_series(dims)
        reference, fused = make_pair(dims, n_models, "float64")
        reference.fit(series)
        fused.fit(series)
        assert_equivalent(reference, fused, series, rtol=1e-9)

    @pytest.mark.parametrize("warm_fraction", [0.0, 0.4])
    def test_warm_start(self, warm_fraction):
        series = make_series(2)
        donor, _ = make_pair(2, 2, "float64")
        donor.fit(series)
        reference, fused = make_pair(2, 3, "float64")
        reference.fit(series, warm_start=donor.models,
                      warm_start_fraction=warm_fraction)
        fused.fit(series, warm_start=donor.models,
                  warm_start_fraction=warm_fraction)
        assert_equivalent(reference, fused, series, rtol=1e-9)

    @pytest.mark.parametrize("cae_overrides", [
        {"use_glu": False},
        {"use_attention": False},
        {"position_mode": "table"},
        {"reconstruct": "embedding"},
    ], ids=["no-glu", "no-attention", "table-positions",
            "embedding-reconstruct"])
    def test_architecture_variants(self, cae_overrides):
        series = make_series(2)
        reference, fused = make_pair(2, 2, "float64", **cae_overrides)
        reference.fit(series)
        fused.fit(series)
        assert_equivalent(reference, fused, series, rtol=1e-9)


class TestFloat32Default:
    def test_default_dtype_is_float32(self):
        assert EnsembleConfig().fused_training_dtype == "float32"

    def test_loss_trajectory_within_documented_tolerance(self):
        series = make_series(2)
        reference, fused = make_pair(2, 3, "float32")
        reference.fit(series)
        fused.fit(series)
        # The tolerance documented in docs/performance.md for short runs.
        assert_equivalent(reference, fused, series, rtol=5e-3)

    def test_trained_weights_written_back_as_float64(self):
        series = make_series(2)
        _, fused = make_pair(2, 1, "float32")
        fused.fit(series)
        for _, param in fused.models[0].named_parameters():
            assert param.data.dtype == np.float64


class TestDispatch:
    def test_config_flag_and_override(self):
        series = make_series(2)
        reference, fused = make_pair(2, 2, "float64")
        reference.fit(series, fused_training=True)     # override on
        fused.fit(series, fused_training=False)        # override off
        # Overrides swap the paths; float64 keeps them equivalent.
        assert_equivalent(reference, fused, series, rtol=1e-9)

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError, match="fused_training_dtype"):
            EnsembleConfig(fused_training_dtype="float16")

    def test_trainer_rejects_non_float_dtype(self):
        cae = CAEConfig(input_dim=2, embed_dim=8, window=8, n_layers=1)
        with pytest.raises(ValueError, match="floating"):
            FusedEnsembleTrainer(cae, EnsembleConfig(), dtype="int32")

    def test_refresher_forwards_fused_training(self):
        from repro.streaming.refresh import EnsembleRefresher
        series = make_series(2)
        _, fused = make_pair(2, 2, "float64")
        fused.fit(series)
        refresher = EnsembleRefresher(fused_training=False)
        replacement, _ = refresher.build(fused, series, index=len(series))
        assert replacement.config.fused_training is False
        # None (the default) inherits the serving ensemble's setting.
        inheriting = EnsembleRefresher()
        replacement, _ = inheriting.build(fused, series, index=len(series))
        assert replacement.config.fused_training is True

    def test_refresher_rejects_non_bool(self):
        from repro.streaming.refresh import EnsembleRefresher
        with pytest.raises(ValueError, match="fused_training"):
            EnsembleRefresher(fused_training=1)
