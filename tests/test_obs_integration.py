"""End-to-end observability over the streaming refresh lifecycle.

The acceptance scenario for the telemetry layer: one induced drift on a
coordinator-backed detector yields ONE connected trace — root ``refresh``
with ``refresh.trigger`` / ``refresh.admission`` / ``refresh.build`` /
``refresh.pack`` / ``refresh.swap`` children and the pack span nested
under the build span created on the worker thread.  Alongside: serve
histograms populate and export, telemetry never leaks into checkpoints,
dedup subscribers report refresh cost symmetrically in
:class:`~repro.streaming.StreamStats`, and the registry stays coherent
while serving races a gated background build.
"""

import json
import threading

import pytest

from repro.metrics.events import (fleet_refresh_report_from_registry,
                                  runtime_report)
from repro.obs import (MetricsRegistry, Tracer, render_prometheus,
                       use_registry, use_tracer)
from repro.streaming import (EnsembleRefresher, RefreshCoordinator,
                             StreamFleet, StreamingDetector)
from repro.streaming.refresh import RefreshReport
from tests.conftest import sine_regime
from tests.test_streaming_worker import (ConstantEnsemble, FireAt,
                                         SlowRefresher, wait_build_started)

GATE_TIMEOUT = 30.0


class CostedRefresher(SlowRefresher):
    """Gated stub whose reports carry a visible build cost."""

    TRAIN_SECONDS = 0.25

    def build(self, ensemble, history, index, generation=None,
              trigger_index=None, mode="inline", cancel=None):
        replacement, report = super().build(
            ensemble, history, index, generation=generation,
            trigger_index=trigger_index, mode=mode)
        report = RefreshReport(
            index=report.index, history_length=report.history_length,
            train_seconds=self.TRAIN_SECONDS,
            warm_start_fraction=report.warm_start_fraction,
            copied_fraction=report.copied_fraction,
            trigger_index=report.trigger_index, mode=report.mode)
        return replacement, report


class TestConnectedTrace:
    def test_one_drift_yields_one_connected_trace(self, stream_ensemble):
        """Real coordinator, real warm-started build: every lifecycle
        span shares the root's trace id with correct parentage, and the
        pack span (created inside the build on the worker thread) nests
        under the build span."""
        tracer = Tracer()
        coordinator = RefreshCoordinator(max_concurrent_builds=1)
        with use_tracer(tracer), use_registry(MetricsRegistry()):
            refresher = EnsembleRefresher(cooldown=0, epochs_per_model=1)
            detector = StreamingDetector(
                stream_ensemble, drift_detector=FireAt(30),
                refresher=refresher, history=64, refresh_mode="async",
                coordinator=coordinator, name="traced")
            detector.warm_up(sine_regime(7, start=353))
            detector.update_batch(sine_regime(40, start=360))
            assert detector.wait_for_refresh(GATE_TIMEOUT)
            assert detector.n_refreshes == 1
            assert coordinator.drain(GATE_TIMEOUT)

        spans = {span.name: span for span in tracer.finished()}
        assert set(spans) == {"refresh", "refresh.trigger",
                              "refresh.admission", "refresh.build",
                              "refresh.pack", "refresh.swap"}
        root = spans["refresh"]
        assert root.parent_id is None
        assert root.attributes["stream"] == "traced"
        assert root.attributes["trigger_index"] == 30
        # One trace: every span carries the root's trace id.
        assert all(span.trace_id == root.trace_id
                   for span in spans.values())
        # Lifecycle children hang off the root; pack nests in the build.
        for child in ("refresh.trigger", "refresh.admission",
                      "refresh.build", "refresh.swap"):
            assert spans[child].parent_id == root.span_id, child
        assert spans["refresh.pack"].parent_id == \
            spans["refresh.build"].span_id
        assert spans["refresh.build"].attributes["mode"] == "async"
        assert spans["refresh.build"].attributes["status"] == "ready"
        assert spans["refresh.pack"].attributes["n_models"] == \
            len(stream_ensemble.models)
        assert spans["refresh.swap"].attributes["swap_lag"] >= 0
        # Every span closed; durations are sane (build covers pack).
        assert all(span.duration >= 0.0 for span in spans.values())
        assert spans["refresh.build"].duration >= \
            spans["refresh.pack"].duration

    def test_deduped_subscriber_trace_is_marked_and_closed(
            self, stream_ensemble):
        """The follower of a deduped build gets its admission span ended
        with deduped=True, and still closes its own root at its swap."""
        tracer = Tracer()
        coordinator = RefreshCoordinator(max_concurrent_builds=2)
        gate = threading.Event()
        with use_tracer(tracer), use_registry(MetricsRegistry()):
            detectors = []
            for name in ("leader", "follower"):
                refresher = SlowRefresher(
                    ConstantEnsemble(9.0, stream_ensemble.cae_config),
                    gate)
                detector = StreamingDetector(
                    stream_ensemble, drift_detector=FireAt(30),
                    refresher=refresher, history=64,
                    refresh_mode="async", coordinator=coordinator,
                    name=name)
                detector.warm_up(sine_regime(7, start=353))
                detectors.append((detector, refresher))
            for detector, _ in detectors:
                detector.update_batch(sine_regime(40, start=360))
            assert wait_build_started(detectors[0][1])
            assert coordinator.stats().n_deduped == 1
            gate.set()
            for detector, _ in detectors:
                assert detector.wait_for_refresh(GATE_TIMEOUT)
            assert coordinator.drain(GATE_TIMEOUT)

        spans = tracer.finished()
        roots = [span for span in spans if span.name == "refresh"]
        admissions = [span for span in spans
                      if span.name == "refresh.admission"]
        assert len(roots) == 2 and len(admissions) == 2
        assert roots[0].trace_id != roots[1].trace_id   # one per stream
        deduped = [span for span in admissions
                   if span.attributes.get("deduped")]
        assert len(deduped) == 1
        # Exactly one build span, attributed to the leader's trace.
        builds = [span for span in spans if span.name == "refresh.build"]
        assert len(builds) == 1
        leader_root = next(root for root in roots
                           if root.span_id == builds[0].parent_id)
        assert deduped[0].trace_id != leader_root.trace_id


class TestServeMetricsExport:
    def test_serve_histograms_populate_and_export(self, stream_ensemble):
        registry = MetricsRegistry()
        with use_registry(registry):
            stream_ensemble.invalidate_fused()
            stream_ensemble.prepare_fused()    # fused chunk instruments
            detector = StreamingDetector(stream_ensemble, history=64,
                                         name="serve")
            detector.warm_up(sine_regime(7, start=353))
            detector.update_batch(sine_regime(64, start=360))
            detector.update(sine_regime(1, start=424)[0])

        snapshot = registry.snapshot()
        histograms = {entry["name"]: entry
                      for entry in snapshot["histograms"]}
        batch = histograms["repro_stream_update_batch_seconds"]
        assert batch["count"] == 2             # update() delegates too
        assert batch["p50"] is not None and batch["p99"] is not None
        assert histograms["repro_stream_update_seconds"]["count"] == 1
        assert histograms["repro_fused_chunk_seconds"]["count"] >= 1
        counters = {(entry["name"], tuple(sorted(entry["labels"].items()))):
                    entry["value"] for entry in snapshot["counters"]}
        assert counters[("repro_stream_updates_total",
                         (("stream", "serve"),))] == 65
        assert counters[("repro_fused_windows_total", ())] >= 65
        gauges = {entry["name"]: entry["value"]
                  for entry in snapshot["gauges"]}
        assert gauges["repro_stream_history_rows"] == 64  # ring is full
        # The same instruments surface through the Prometheus renderer.
        text = render_prometheus(registry)
        assert "repro_stream_update_batch_seconds_bucket" in text
        assert 'repro_stream_updates_total{stream="serve"} 65' in text
        # ... and through the report view over the live registry.
        report = runtime_report(registry)
        assert report.n_updates == 65
        assert report.batch_p50 == pytest.approx(batch["p50"])
        assert report.queue_depth == 0

    def test_null_registry_detector_records_nothing(self, stream_ensemble):
        from repro.obs import NullRegistry
        registry = MetricsRegistry()
        with use_registry(registry):
            detector = StreamingDetector(stream_ensemble, history=64,
                                         registry=NullRegistry())
            detector.warm_up(sine_regime(7, start=353))
            detector.update_batch(sine_regime(16, start=360))
        assert registry.snapshot()["counters"] == []


class TestCheckpointExclusion:
    def test_telemetry_never_serialises_into_state(self, stream_ensemble):
        registry = MetricsRegistry()
        with use_registry(registry):
            detector = StreamingDetector(stream_ensemble, history=64,
                                         name="ckpt")
            detector.warm_up(sine_regime(7, start=353))
            detector.update_batch(sine_regime(32, start=360))
        state = detector.state_dict()
        rendered = json.dumps(state)           # JSON-pure, so greppable
        for needle in ("telemetry", "registry", "_obs", "histogram",
                       "trace_id", "span"):
            assert needle not in rendered, needle

        # Resume under a fresh registry: recording continues from zero.
        resumed_registry = MetricsRegistry()
        resumed = StreamingDetector.from_state(
            stream_ensemble, state, registry=resumed_registry,
            name="ckpt")
        resumed.update_batch(sine_regime(8, start=392))
        counters = {entry["name"]: entry["value"]
                    for entry in resumed_registry.snapshot()["counters"]}
        assert counters["repro_stream_updates_total"] == 8


class TestFleetRefreshCostSymmetry:
    def test_dedup_subscribers_report_refresh_cost(self, stream_ensemble):
        """Regression: both streams of a deduped build report the build
        cost in StreamStats — the follower's stats must not look free
        just because the leader's refresher trained."""
        registry = MetricsRegistry()
        # The coordinator binds its registry mirrors at construction —
        # build it inside the use_registry scope.
        with use_registry(registry):
            coordinator = RefreshCoordinator(max_concurrent_builds=2)
        # Held closed until BOTH streams have submitted, so the second
        # request deterministically dedups into the first build instead
        # of racing a build that may already have finished.
        gate = threading.Event()
        refreshers = {}

        def factory(name):
            refresher = CostedRefresher(
                ConstantEnsemble(9.0, stream_ensemble.cae_config), gate)
            refreshers[name] = refresher
            detector = StreamingDetector(
                stream_ensemble, drift_detector=FireAt(30),
                refresher=refresher, history=64, refresh_mode="async",
                coordinator=coordinator, name=name)
            detector.warm_up(sine_regime(7, start=353))
            return detector

        with use_registry(registry):
            fleet = StreamFleet(factory, coordinator=coordinator)
            for name in ("a", "b"):
                fleet.update_batch(name, sine_regime(40, start=360))
            assert wait_build_started(refreshers["a"])
            assert coordinator.stats().n_deduped == 1
            gate.set()
            for name in ("a", "b"):
                assert fleet.detector(name).wait_for_refresh(GATE_TIMEOUT)

        stats = coordinator.stats()
        assert stats.n_admitted == 1 and stats.n_deduped == 1
        for stat in fleet.stats():
            assert stat.n_refreshes == 1
            assert stat.n_async_refreshes == 1
            assert stat.refresh_seconds == \
                pytest.approx(CostedRefresher.TRAIN_SECONDS)
            assert stat.mean_refresh_lag is not None
            assert stat.mean_refresh_lag >= 0.0

        # The fleet's one-call inspection surface agrees.
        telemetry = fleet.telemetry(registry=registry)
        assert telemetry["totals"]["n_streams"] == 2
        assert telemetry["totals"]["n_refreshes"] == 2
        assert telemetry["coordinator"]["n_deduped"] == 1
        assert json.loads(json.dumps(telemetry)) == telemetry
        names = {entry["name"]
                 for entry in telemetry["metrics"]["counters"]}
        assert "repro_coordinator_deduped_total" in names
        # Registry-backed admission report mirrors the coordinator's.
        from_registry = fleet_refresh_report_from_registry(
            registry, max_concurrent_builds=2)
        assert from_registry.n_requests == stats.n_requests
        assert from_registry.n_deduped == stats.n_deduped
        assert from_registry.builds_saved == 1
        # Both subscriber streams observed the build cost per-stream.
        build = next(entry
                     for entry in telemetry["metrics"]["histograms"]
                     if entry["name"] == "repro_refresh_build_seconds")
        assert build["count"] == 2


class TestRegistryUnderConcurrency:
    def test_serving_stays_coherent_while_a_build_races(
            self, stream_ensemble):
        """Gated build held open while the serve path keeps recording:
        counters stay exact, the snapshot renders mid-race, and totals
        line up once the build lands."""
        registry = MetricsRegistry()
        gate = threading.Event()
        with use_registry(registry):
            coordinator = RefreshCoordinator(max_concurrent_builds=1)
            refresher = CostedRefresher(
                ConstantEnsemble(9.0, stream_ensemble.cae_config), gate)
            detector = StreamingDetector(
                stream_ensemble, drift_detector=FireAt(30),
                refresher=refresher, history=64, refresh_mode="async",
                coordinator=coordinator, name="raced")
            detector.warm_up(sine_regime(7, start=353))
            detector.update_batch(sine_regime(40, start=360))
            assert wait_build_started(refresher)

            # Serve concurrently from several threads against the held
            # build (each thread its own detector name-sharing the
            # instruments), plus the original on the main thread.
            n_threads, per_thread = 4, 4

            def serve(offset):
                worker = StreamingDetector(stream_ensemble, history=64,
                                           name="raced")
                worker.warm_up(sine_regime(7, start=353))
                for i in range(per_thread):
                    worker.update_batch(
                        sine_regime(8, start=500 + offset * 100 + i * 8))

            threads = [threading.Thread(target=serve, args=(t,))
                       for t in range(n_threads)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            snapshot = registry.snapshot()     # renders mid-race
            assert json.loads(json.dumps(snapshot)) == snapshot
            gate.set()
            assert detector.wait_for_refresh(GATE_TIMEOUT)
            assert coordinator.drain(GATE_TIMEOUT)

        counters = {(entry["name"],
                     tuple(sorted(entry["labels"].items()))):
                    entry["value"]
                    for entry in registry.snapshot()["counters"]}
        expected = 40 + n_threads * per_thread * 8
        assert counters[("repro_stream_updates_total",
                         (("stream", "raced"),))] == expected
        assert counters[("repro_coordinator_completed_total", ())] == 1
        batches = 1 + n_threads * per_thread
        histograms = {entry["name"]: entry
                      for entry in registry.snapshot()["histograms"]}
        assert histograms["repro_stream_update_batch_seconds"]["count"] \
            == batches
