"""Metric implementations vs hand-computed and brute-force references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (AccuracyReport, accuracy_report, apply_threshold,
                           best_f1_threshold, confusion_counts,
                           evaluate_at_ratio, evaluate_top_k, f1_score,
                           pr_auc, precision_recall_curve, precision_recall_f1,
                           precision_score, recall_score, roc_auc, roc_curve,
                           top_k_threshold)


class TestConfusion:
    def test_hand_computed(self):
        labels = np.array([1, 1, 0, 0, 1])
        preds = np.array([1, 0, 0, 1, 1])
        c = confusion_counts(labels, preds)
        assert (c.tp, c.fp, c.tn, c.fn) == (2, 1, 1, 1)
        assert c.total == 5

    def test_prf_values(self):
        labels = np.array([1, 1, 0, 0, 1])
        preds = np.array([1, 0, 0, 1, 1])
        assert precision_score(labels, preds) == pytest.approx(2 / 3)
        assert recall_score(labels, preds) == pytest.approx(2 / 3)
        assert f1_score(labels, preds) == pytest.approx(2 / 3)

    def test_prf_tuple_consistent(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 50)
        preds = rng.integers(0, 2, 50)
        p, r, f = precision_recall_f1(labels, preds)
        assert p == pytest.approx(precision_score(labels, preds))
        assert r == pytest.approx(recall_score(labels, preds))
        assert f == pytest.approx(f1_score(labels, preds))

    def test_zero_division_safe(self):
        labels = np.array([0, 0, 1])
        preds = np.array([0, 0, 0])
        assert precision_score(labels, preds) == 0.0
        assert recall_score(labels, preds) == 0.0
        assert f1_score(labels, preds) == 0.0

    def test_rejects_nonbinary(self):
        with pytest.raises(ValueError):
            confusion_counts(np.array([0, 2]), np.array([0, 1]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_counts(np.array([0, 1]), np.array([0, 1, 1]))


class TestROC:
    def test_perfect_ranking(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc(labels, scores) == 1.0

    def test_inverted_ranking(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc(labels, scores) == 0.0

    def test_all_tied_is_half(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.ones(4)
        assert roc_auc(labels, scores) == pytest.approx(0.5)

    def test_hand_computed(self):
        # Ranking: 0.9(1) 0.8(0) 0.7(1) 0.6(0): AUC = 3/4 of pairs ranked right.
        labels = np.array([1, 0, 1, 0])
        scores = np.array([0.9, 0.8, 0.7, 0.6])
        assert roc_auc(labels, scores) == pytest.approx(0.75)

    def test_requires_both_classes(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([1, 1]), np.array([0.1, 0.2]))

    def test_curve_endpoints(self):
        labels = np.array([0, 1, 0, 1, 1])
        scores = np.array([0.2, 0.9, 0.4, 0.6, 0.3])
        fpr, tpr, thresholds = roc_curve(labels, scores)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert np.all(np.diff(thresholds) <= 0)

    @given(n=st.integers(5, 60))
    @settings(max_examples=30, deadline=None)
    def test_monotone_transform_invariance(self, n):
        rng = np.random.default_rng(n)
        labels = rng.integers(0, 2, n)
        if labels.sum() in (0, n):
            labels[0], labels[1] = 0, 1
        scores = rng.random(n)
        a = roc_auc(labels, scores)
        b = roc_auc(labels, np.exp(3 * scores))     # strictly monotone map
        assert a == pytest.approx(b)

    @given(n=st.integers(5, 60))
    @settings(max_examples=30, deadline=None)
    def test_matches_pairwise_definition(self, n):
        rng = np.random.default_rng(n + 1000)
        labels = rng.integers(0, 2, n)
        if labels.sum() in (0, n):
            labels[0], labels[1] = 0, 1
        scores = rng.normal(size=n).round(1)        # force some ties
        pos = scores[labels == 1]
        neg = scores[labels == 0]
        wins = (pos[:, None] > neg[None, :]).sum()
        ties = (pos[:, None] == neg[None, :]).sum()
        expected = (wins + 0.5 * ties) / (len(pos) * len(neg))
        assert roc_auc(labels, scores) == pytest.approx(expected)


class TestPR:
    def test_perfect(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert pr_auc(labels, scores) == pytest.approx(1.0)

    def test_hand_computed_average_precision(self):
        # Ranking: 1, 0, 1 → AP = (1/1)*0.5 + (2/3)*0.5 = 0.8333…
        labels = np.array([1, 0, 1])
        scores = np.array([0.9, 0.8, 0.7])
        assert pr_auc(labels, scores) == pytest.approx(5 / 6)

    def test_random_scores_near_prevalence(self):
        rng = np.random.default_rng(0)
        labels = (rng.random(20000) < 0.1).astype(int)
        scores = rng.random(20000)
        assert abs(pr_auc(labels, scores) - 0.1) < 0.02

    def test_requires_positives(self):
        with pytest.raises(ValueError):
            pr_auc(np.zeros(5, dtype=int), np.arange(5.0))

    def test_curve_shapes(self):
        labels = np.array([0, 1, 1, 0, 1])
        scores = np.array([0.1, 0.9, 0.8, 0.5, 0.4])
        precision, recall, thresholds = precision_recall_curve(labels, scores)
        assert precision.shape == recall.shape == thresholds.shape
        assert recall[-1] == 1.0


class TestBestF1:
    @given(n=st.integers(5, 40))
    @settings(max_examples=30, deadline=None)
    def test_matches_brute_force(self, n):
        rng = np.random.default_rng(n)
        labels = rng.integers(0, 2, n)
        if labels.sum() == 0:
            labels[0] = 1
        scores = rng.random(n).round(2)             # force ties
        best = best_f1_threshold(labels, scores)
        brute = 0.0
        for threshold in np.unique(scores):
            predictions = (scores > threshold - 1e-12).astype(int)
            brute = max(brute, f1_score(labels, predictions))
        assert best.f1 == pytest.approx(brute, abs=1e-9)

    def test_threshold_is_usable(self):
        labels = np.array([0, 0, 1, 1, 0])
        scores = np.array([0.1, 0.2, 0.9, 0.8, 0.3])
        best = best_f1_threshold(labels, scores)
        predictions = apply_threshold(scores, best.threshold)
        assert f1_score(labels, predictions) == pytest.approx(best.f1)

    def test_no_positives(self):
        result = best_f1_threshold(np.zeros(4, dtype=int), np.arange(4.0))
        assert result.f1 == 0.0


class TestTopK:
    def test_top_k_selects_exact_count(self):
        scores = np.arange(100.0)
        threshold = top_k_threshold(scores, 10.0)
        assert (scores > threshold).sum() == 10

    def test_top_k_with_ties(self):
        scores = np.array([1.0, 1.0, 1.0, 5.0])
        threshold = top_k_threshold(scores, 25.0)
        assert (scores > threshold).sum() == 1

    def test_invalid_percent(self):
        with pytest.raises(ValueError):
            top_k_threshold(np.arange(5.0), 0.0)
        with pytest.raises(ValueError):
            top_k_threshold(np.arange(5.0), 150.0)

    def test_evaluate_top_k_perfect_at_true_ratio(self):
        labels = np.zeros(100, dtype=int)
        labels[:10] = 1
        scores = np.where(labels == 1, 2.0, 1.0) + \
            np.linspace(0, 0.1, 100)
        result = evaluate_top_k(labels, scores, 10.0)
        assert result.recall == pytest.approx(1.0)
        assert result.precision == pytest.approx(1.0)

    def test_evaluate_at_ratio_equivalent(self):
        rng = np.random.default_rng(5)
        labels = rng.integers(0, 2, 50)
        scores = rng.random(50)
        a = evaluate_at_ratio(labels, scores, 0.1)
        b = evaluate_top_k(labels, scores, 10.0)
        assert a == b


class TestAccuracyReport:
    def test_report_fields(self):
        rng = np.random.default_rng(2)
        labels = rng.integers(0, 2, 100)
        scores = labels + rng.normal(0, 0.3, 100)
        report = accuracy_report(labels, scores)
        assert isinstance(report, AccuracyReport)
        assert 0.0 <= report.f1 <= 1.0
        assert report.roc_auc > 0.8        # informative scores
        assert set(report.as_dict()) == {"precision", "recall", "f1", "pr",
                                         "roc"}
