"""Failure injection: degenerate inputs must fail loudly, not silently.

Silent NaN propagation is the classic failure mode of reconstruction-based
detectors (every score becomes NaN and every threshold comparison False —
no outliers ever flagged).  These tests pin the contract: invalid inputs
raise immediately with actionable messages.
"""

import numpy as np
import pytest

from repro.baselines import (IsolationForest, MovingAverageSmoothing, RAE)
from repro.core import CAEConfig, CAEEnsemble, EnsembleConfig
from repro.experiments.tables import sequential_depth_per_window
from repro.experiments.reporting import paired_row


@pytest.fixture
def clean_series():
    rng = np.random.default_rng(0)
    return rng.standard_normal((200, 2))


def quick_ensemble():
    return CAEEnsemble(
        CAEConfig(input_dim=2, embed_dim=8, window=8, n_layers=1),
        EnsembleConfig(n_models=1, epochs_per_model=1,
                       max_training_windows=64, seed=0))


class TestNaNRejection:
    def test_ensemble_fit_rejects_nan(self, clean_series):
        series = clean_series.copy()
        series[10, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            quick_ensemble().fit(series)

    def test_ensemble_fit_rejects_inf(self, clean_series):
        series = clean_series.copy()
        series[10, 0] = np.inf
        with pytest.raises(ValueError, match="NaN or infinite"):
            quick_ensemble().fit(series)

    def test_ensemble_score_rejects_nan(self, clean_series):
        ensemble = quick_ensemble().fit(clean_series)
        dirty = clean_series.copy()
        dirty[5, 1] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            ensemble.score(dirty)

    def test_windowed_detector_rejects_nan(self, clean_series):
        dirty = clean_series.copy()
        dirty[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            RAE(window=8, epochs=1).fit(dirty)

    def test_classic_detector_rejects_nan(self, clean_series):
        dirty = clean_series.copy()
        dirty[3, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            IsolationForest(n_estimators=5).fit(dirty)

    def test_mas_rejects_nan_at_scoring(self, clean_series):
        detector = MovingAverageSmoothing(window=8).fit(clean_series)
        dirty = clean_series.copy()
        dirty[7, 1] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            detector.score(dirty)


class TestDegenerateSeries:
    def test_constant_series_trains_without_nan(self):
        """σ = 0 dimensions must not blow up the z-scaler or the model."""
        series = np.ones((120, 2))
        ensemble = quick_ensemble().fit(series)
        scores = ensemble.score(series)
        assert np.all(np.isfinite(scores))

    def test_single_window_series(self):
        """A series exactly one window long still scores every point."""
        rng = np.random.default_rng(1)
        series = rng.standard_normal((100, 2))
        ensemble = quick_ensemble().fit(series)
        window = ensemble.cae_config.window
        scores = ensemble.score(series[:window])
        assert scores.shape == (window,)

    def test_series_shorter_than_window_raises(self, clean_series):
        ensemble = quick_ensemble().fit(clean_series)
        with pytest.raises(ValueError):
            ensemble.score(clean_series[:4])    # window is 8

    def test_huge_magnitude_series_finite(self):
        """Re-scaling must absorb extreme raw magnitudes (1e9-scale)."""
        rng = np.random.default_rng(2)
        series = 1e9 * (1.0 + 0.001 * rng.standard_normal((150, 2)))
        ensemble = quick_ensemble().fit(series)
        assert np.all(np.isfinite(ensemble.score(series)))


class TestHarnessHelpers:
    def test_sequential_depth_rae_grows_with_window(self):
        assert sequential_depth_per_window("RAE", 16, 2) == 32
        assert sequential_depth_per_window("RAE-Ensemble", 64, 2) == 128

    def test_sequential_depth_cae_independent_of_window(self):
        assert sequential_depth_per_window("CAE", 16, 2) == \
            sequential_depth_per_window("CAE", 256, 2) == 6
        assert sequential_depth_per_window("CAE-Ensemble", 16, 3) == 8

    def test_paired_row_formats(self):
        cells = paired_row((0.5, 0.25), (0.1, 0.2))
        assert cells == ["0.5000 (0.1000)", "0.2500 (0.2000)"]

    def test_paired_row_without_reference(self):
        assert paired_row((0.5,), None) == ["0.5000"]


# ----------------------------------------------------------------------
# Process-level faults: the runtime must degrade, never poison serving
# ----------------------------------------------------------------------
class TestProcessFaults:
    """SIGKILLed workers, orphaned segments and a dead broker.

    Uses the same gated mp handshake as ``test_runtime_processes`` —
    every fault is injected at a point the test *chose* (the build is
    provably in flight because the worker said so), never timed.
    """

    def test_sigkill_worker_fails_handle_without_poisoning(
            self, shm_namespace, mp_handshake):
        """Kill the build worker mid-train: the handle fails with
        WorkerCrashed, the pool respawns, and the *next* build on the
        same client succeeds on the fresh worker."""
        import os
        from repro.runtime import ProcessBuildPool, WorkerCrashed
        from repro.streaming import RefreshCoordinator
        from tests.conftest import fabricate_ensemble, sine_regime
        from tests.test_runtime_processes import (GATE_TIMEOUT,
                                                  ProcessGatedRefresher,
                                                  wait_started)

        pool = ProcessBuildPool(n_workers=1, worker_context=mp_handshake)
        coordinator = RefreshCoordinator(max_concurrent_builds=1,
                                         build_runner=pool.build_runner)
        try:
            client = coordinator.client(ProcessGatedRefresher())
            ensemble = fabricate_ensemble()
            history = sine_regime(32, seed=1)
            handle = client.submit(ensemble, history, 30)
            victim_pid, _ = wait_started(mp_handshake)
            os.kill(victim_pid, 9)
            assert client.join(GATE_TIMEOUT)
            assert client.take() is handle
            assert handle.status == "failed"
            assert isinstance(handle.error, WorkerCrashed)

            # The serving side is unharmed: the coordinator accepts a new
            # request and the respawned worker completes it.  (The second
            # gate, never touched by the victim, releases it — the victim
            # may have died holding the first gate's condition lock.)
            mp_handshake["gate2"].set()
            survivor = coordinator.client(ProcessGatedRefresher(
                tag="retry", gate_key="gate2", started_key="started2"))
            retry = survivor.submit(ensemble, history, 60)
            fresh_pid, _ = wait_started(mp_handshake, key="started2")
            assert fresh_pid != victim_pid
            assert survivor.join(GATE_TIMEOUT)
            assert survivor.take() is retry and retry.ready
        finally:
            coordinator.shutdown()
            pool.shutdown()
        from repro.runtime import list_segments
        assert list_segments(shm_namespace) == []

    def test_orphaned_segments_unlinked_on_next_attach(self,
                                                       shm_namespace):
        """A segment whose owner pid is dead is swept by the next
        publish/attach instead of accumulating in /dev/shm."""
        import multiprocessing as mp
        from multiprocessing import shared_memory
        from repro.runtime import (attach_pack, list_segments,
                                   publish_pack, unlink_pack)
        from repro.runtime import shm as shm_mod
        from tests.conftest import fabricate_ensemble

        child = mp.get_context("fork").Process(target=int)
        child.start()
        child.join()
        dead_pid = child.pid

        orphan = shared_memory.SharedMemory(
            create=True, size=64,
            name=f"repro-{shm_namespace}-{dead_pid}-deadbeef")
        orphan.close()
        shm_mod._unregister(orphan.name)
        assert list_segments(shm_namespace) == [orphan.name]

        manifest = publish_pack(fabricate_ensemble(), dtype=np.float64)
        attached = attach_pack(manifest)   # sweeps before mapping
        attached.close()
        survivors = list_segments(shm_namespace)
        assert orphan.name not in survivors
        assert survivors == [manifest["segment"]]
        assert unlink_pack(manifest)

    def test_attach_after_unlink_raises_orphaned(self, shm_namespace):
        from repro.runtime import (OrphanedSegmentError, attach_pack,
                                   publish_pack, unlink_pack)
        from tests.conftest import fabricate_ensemble
        manifest = publish_pack(fabricate_ensemble(), dtype=np.float64)
        assert unlink_pack(manifest)
        with pytest.raises(OrphanedSegmentError):
            attach_pack(manifest)

    def test_broker_death_degrades_to_inline_refresh(self, shm_namespace,
                                                     mp_handshake):
        """SIGKILL the broker with a build in flight: the pending handle
        resolves discarded (the engine re-queues it), the port flips to
        degraded, and new submits build locally in-process."""
        from repro.runtime import BuildBroker
        from repro.streaming.refresh import RefreshReport
        from tests.conftest import fabricate_ensemble, sine_regime
        from tests.test_runtime_processes import (GATE_TIMEOUT,
                                                  ProcessGatedRefresher,
                                                  wait_started)

        class LocalInstantRefresher:
            """Builds immediately, in this process — the degraded path."""

            def __init__(self, replacement):
                self.replacement = replacement
                self.n_refreshes = 0

            def ready(self, history_length, index):
                return True

            def build(self, ensemble, history, index, generation=None,
                      trigger_index=None, mode="inline", cancel=None):
                report = RefreshReport(
                    index=int(index), history_length=int(len(history)),
                    train_seconds=0.0, warm_start_fraction=0.0,
                    copied_fraction=0.0, trigger_index=trigger_index,
                    mode=mode)
                return self.replacement, report

            def commit(self, report):
                self.n_refreshes += 1

        broker = BuildBroker(n_ports=1, n_workers=1,
                             worker_context=mp_handshake)
        try:
            coordinator = broker.coordinator(0)
            ensemble = fabricate_ensemble()
            history = sine_regime(32, seed=1)

            remote = coordinator.client(ProcessGatedRefresher())
            in_flight = remote.submit(ensemble, history, 30)
            wait_started(mp_handshake)     # provably mid-build
            broker.kill()

            # The port notices on its next pump and discards the pending
            # handle — exactly what a coordinator shutdown does, which
            # the engine answers by restoring the refresh request.
            assert remote.join(GATE_TIMEOUT)
            assert in_flight.status == "discarded"
            assert coordinator.port.degraded

            local = coordinator.client(
                LocalInstantRefresher(fabricate_ensemble(seed=5)))
            rebuilt = local.submit(ensemble, history, 60)
            assert local.join(GATE_TIMEOUT)
            assert local.take() is rebuilt and rebuilt.ready
            assert rebuilt.report.trigger_index == 60
        finally:
            broker.shutdown(timeout=1.0)
        from repro.runtime import list_segments
        assert list_segments(shm_namespace) == []
