"""Failure injection: degenerate inputs must fail loudly, not silently.

Silent NaN propagation is the classic failure mode of reconstruction-based
detectors (every score becomes NaN and every threshold comparison False —
no outliers ever flagged).  These tests pin the contract: invalid inputs
raise immediately with actionable messages.
"""

import numpy as np
import pytest

from repro.baselines import (IsolationForest, MovingAverageSmoothing, RAE)
from repro.core import CAEConfig, CAEEnsemble, EnsembleConfig
from repro.experiments.tables import sequential_depth_per_window
from repro.experiments.reporting import paired_row


@pytest.fixture
def clean_series():
    rng = np.random.default_rng(0)
    return rng.standard_normal((200, 2))


def quick_ensemble():
    return CAEEnsemble(
        CAEConfig(input_dim=2, embed_dim=8, window=8, n_layers=1),
        EnsembleConfig(n_models=1, epochs_per_model=1,
                       max_training_windows=64, seed=0))


class TestNaNRejection:
    def test_ensemble_fit_rejects_nan(self, clean_series):
        series = clean_series.copy()
        series[10, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            quick_ensemble().fit(series)

    def test_ensemble_fit_rejects_inf(self, clean_series):
        series = clean_series.copy()
        series[10, 0] = np.inf
        with pytest.raises(ValueError, match="NaN or infinite"):
            quick_ensemble().fit(series)

    def test_ensemble_score_rejects_nan(self, clean_series):
        ensemble = quick_ensemble().fit(clean_series)
        dirty = clean_series.copy()
        dirty[5, 1] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            ensemble.score(dirty)

    def test_windowed_detector_rejects_nan(self, clean_series):
        dirty = clean_series.copy()
        dirty[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            RAE(window=8, epochs=1).fit(dirty)

    def test_classic_detector_rejects_nan(self, clean_series):
        dirty = clean_series.copy()
        dirty[3, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            IsolationForest(n_estimators=5).fit(dirty)

    def test_mas_rejects_nan_at_scoring(self, clean_series):
        detector = MovingAverageSmoothing(window=8).fit(clean_series)
        dirty = clean_series.copy()
        dirty[7, 1] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            detector.score(dirty)


class TestDegenerateSeries:
    def test_constant_series_trains_without_nan(self):
        """σ = 0 dimensions must not blow up the z-scaler or the model."""
        series = np.ones((120, 2))
        ensemble = quick_ensemble().fit(series)
        scores = ensemble.score(series)
        assert np.all(np.isfinite(scores))

    def test_single_window_series(self):
        """A series exactly one window long still scores every point."""
        rng = np.random.default_rng(1)
        series = rng.standard_normal((100, 2))
        ensemble = quick_ensemble().fit(series)
        window = ensemble.cae_config.window
        scores = ensemble.score(series[:window])
        assert scores.shape == (window,)

    def test_series_shorter_than_window_raises(self, clean_series):
        ensemble = quick_ensemble().fit(clean_series)
        with pytest.raises(ValueError):
            ensemble.score(clean_series[:4])    # window is 8

    def test_huge_magnitude_series_finite(self):
        """Re-scaling must absorb extreme raw magnitudes (1e9-scale)."""
        rng = np.random.default_rng(2)
        series = 1e9 * (1.0 + 0.001 * rng.standard_normal((150, 2)))
        ensemble = quick_ensemble().fit(series)
        assert np.all(np.isfinite(ensemble.score(series)))


class TestHarnessHelpers:
    def test_sequential_depth_rae_grows_with_window(self):
        assert sequential_depth_per_window("RAE", 16, 2) == 32
        assert sequential_depth_per_window("RAE-Ensemble", 64, 2) == 128

    def test_sequential_depth_cae_independent_of_window(self):
        assert sequential_depth_per_window("CAE", 16, 2) == \
            sequential_depth_per_window("CAE", 256, 2) == 6
        assert sequential_depth_per_window("CAE-Ensemble", 16, 3) == 8

    def test_paired_row_formats(self):
        cells = paired_row((0.5, 0.25), (0.1, 0.2))
        assert cells == ["0.5000 (0.1000)", "0.2500 (0.2000)"]

    def test_paired_row_without_reference(self):
        assert paired_row((0.5,), None) == ["0.5000"]
