"""Learning-rate schedulers and the RMSProp optimiser."""

import math

import numpy as np
import pytest

from repro.nn import (Adam, CosineAnnealingLR, ExponentialLR, RMSProp, SGD,
                      StepLR, Tensor)


def make_optimizer(lr=1.0):
    return SGD([Tensor(np.zeros(1), requires_grad=True)], lr=lr)


class TestStepLR:
    def test_decays_every_step_size(self):
        scheduler = StepLR(make_optimizer(), step_size=2, gamma=0.5)
        rates = [scheduler.step() for _ in range(6)]
        assert rates == [1.0, 1.0, 0.5, 0.5, 0.25, 0.25]

    def test_mutates_optimizer(self):
        optimizer = make_optimizer()
        scheduler = StepLR(optimizer, step_size=1, gamma=0.1)
        scheduler.step()
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.1)

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepLR(make_optimizer(), step_size=0)


class TestExponentialLR:
    def test_geometric_decay(self):
        scheduler = ExponentialLR(make_optimizer(), gamma=0.5)
        rates = [scheduler.step() for _ in range(4)]
        assert rates == [1.0, 0.5, 0.25, 0.125]


class TestCosineAnnealing:
    def test_endpoints(self):
        scheduler = CosineAnnealingLR(make_optimizer(), t_max=10,
                                      eta_min=0.1)
        first = scheduler.step()
        for _ in range(10):
            last = scheduler.step()
        assert first == pytest.approx(1.0)
        assert last == pytest.approx(0.1)

    def test_midpoint(self):
        scheduler = CosineAnnealingLR(make_optimizer(), t_max=10)
        rates = [scheduler.step() for _ in range(6)]
        assert rates[5] == pytest.approx(0.5)

    def test_restart_cycles(self):
        scheduler = CosineAnnealingLR(make_optimizer(), t_max=4,
                                      restart=True)
        rates = [scheduler.step() for _ in range(9)]
        assert rates[0] == pytest.approx(rates[4]) == pytest.approx(rates[8])

    def test_no_restart_clamps(self):
        scheduler = CosineAnnealingLR(make_optimizer(), t_max=3,
                                      eta_min=0.0)
        for _ in range(10):
            last = scheduler.step()
        assert last == pytest.approx(0.0, abs=1e-12)

    def test_invalid_t_max(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(make_optimizer(), t_max=0)


class TestRMSProp:
    def test_converges_on_quadratic(self):
        p = Tensor(np.array([4.0]), requires_grad=True)
        optimizer = RMSProp([p], lr=0.05)
        for _ in range(500):
            optimizer.zero_grad()
            ((p - 1.0) ** 2).sum().backward()
            optimizer.step()
        assert abs(p.item() - 1.0) < 1e-2

    def test_skips_gradless_params(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        RMSProp([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            RMSProp([Tensor([1.0], requires_grad=True)], alpha=1.0)


class TestSchedulerWithTraining:
    def test_cosine_with_adam_still_converges(self):
        rng = np.random.default_rng(0)
        w = Tensor(rng.standard_normal(3), requires_grad=True)
        target = np.array([1.0, -1.0, 0.5])
        optimizer = Adam([w], lr=0.1)
        scheduler = CosineAnnealingLR(optimizer, t_max=200, eta_min=1e-4)
        for _ in range(200):
            scheduler.step()
            optimizer.zero_grad()
            ((w - Tensor(target)) ** 2).sum().backward()
            optimizer.step()
        np.testing.assert_allclose(w.data, target, atol=1e-2)
