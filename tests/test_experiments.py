"""Experiment harness: budgets, detector construction, reporting, registry."""

import numpy as np
import pytest

from repro.experiments import (BUDGETS, Budget, EXPERIMENTS,
                               EXPERIMENT_DESCRIPTIONS, FAST, MODEL_ORDER,
                               build_detector, dataset_hyperparameters,
                               format_series, format_table, highlight_best,
                               overall_average, run_detector, run_matrix)
from repro.baselines import OutlierDetector
from repro.datasets import load_dataset

MICRO = Budget(name="micro", dataset_scale=0.1, epochs=1, n_models=2,
               max_training_windows=96, embed_dim=12, n_layers=1,
               hidden_size=12)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["Model", "F1"], [["CAE", 0.5], ["RAE", 0.25]])
        lines = text.splitlines()
        assert lines[0].startswith("Model")
        assert "0.5000" in text and "0.2500" in text
        assert len(lines) == 4     # header, rule, two rows

    def test_format_table_title(self):
        text = format_table(["A"], [[1.0]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_format_series_columns(self):
        text = format_series("K", [1, 2], {"P": [0.1, 0.2],
                                           "R": [0.3, 0.4]})
        assert "K" in text and "P" in text and "R" in text
        assert "0.4000" in text

    def test_highlight_best(self):
        assert highlight_best({"a": 0.1, "b": 0.9}) == "b"
        assert highlight_best({"a": 0.1, "b": 0.9},
                              larger_is_better=False) == "a"
        with pytest.raises(ValueError):
            highlight_best({})


class TestBudgets:
    def test_registry_contains_named_presets(self):
        assert {"fast", "standard", "full"} <= set(BUDGETS)

    def test_scaled_epochs_floor(self):
        assert FAST.scaled_epochs(0.01) == 1

    def test_hyperparameters_fall_back_to_ecg(self):
        assert dataset_hyperparameters("unknown") == \
            dataset_hyperparameters("ecg")


class TestBuildDetector:
    @pytest.mark.parametrize("model_name", MODEL_ORDER)
    def test_constructs_every_model(self, model_name):
        dataset = load_dataset("ecg", scale=0.1)
        detector = build_detector(model_name, dataset, MICRO)
        assert isinstance(detector, OutlierDetector)

    def test_unknown_model_raises(self):
        dataset = load_dataset("ecg", scale=0.1)
        with pytest.raises(KeyError):
            build_detector("BOGUS", dataset, MICRO)

    def test_window_capped_for_short_series(self):
        dataset = load_dataset("ecg", scale=0.1)    # 400 observations
        detector = build_detector("CAE-Ensemble", dataset, MICRO)
        detector.fit(dataset.train)
        assert detector.ensemble.cae_config.window <= \
            dataset.train.shape[0] // 8


class TestRunner:
    def test_run_detector_produces_report(self):
        dataset = load_dataset("ecg", scale=0.1)
        result = run_detector("MAS", dataset, MICRO)
        assert result.model == "MAS"
        assert result.dataset == "ecg"
        assert 0.0 <= result.report.f1 <= 1.0
        assert result.train_seconds >= 0.0
        assert result.scores is None

    def test_keep_scores(self):
        dataset = load_dataset("ecg", scale=0.1)
        result = run_detector("MAS", dataset, MICRO, keep_scores=True)
        assert result.scores.shape == (dataset.test.shape[0],)

    def test_run_matrix_structure(self):
        results = run_matrix(["MAS", "ISF"], ["ecg"], MICRO)
        assert set(results) == {"ecg"}
        assert set(results["ecg"]) == {"MAS", "ISF"}

    def test_overall_average(self):
        results = run_matrix(["MAS"], ["ecg", "smap"], MICRO)
        overall = overall_average(results)
        expected_f1 = np.mean([results["ecg"]["MAS"].report.f1,
                               results["smap"]["MAS"].report.f1])
        assert overall["MAS"].f1 == pytest.approx(expected_f1)

    def test_overall_average_empty(self):
        assert overall_average({}) == {}

    def test_progress_callback_invoked(self):
        messages = []
        run_matrix(["MAS"], ["ecg"], MICRO, progress=messages.append)
        assert messages == ["MAS on ecg"]


class TestRegistry:
    def test_all_eleven_artifacts_registered(self):
        assert set(EXPERIMENTS) == {
            "table3", "table4", "table5", "table6", "table7", "table8",
            "figure13", "figure14", "figure15", "figure16", "figure17"}

    def test_descriptions_cover_registry(self):
        assert set(EXPERIMENT_DESCRIPTIONS) == set(EXPERIMENTS)


class TestMicroExperiments:
    """Each artifact generator must run end-to-end on a micro budget and
    return a well-formed TableResult.  (Accuracy is not asserted here —
    the benchmarks assert shapes on realistic budgets.)"""

    def test_table5_structure(self):
        result = EXPERIMENTS["table5"](budget=MICRO, datasets=("ecg",))
        assert "No attention" in result.data["ecg"]
        assert "CAE-Ensemble" in result.rendering

    def test_table6_structure(self):
        result = EXPERIMENTS["table6"](budget=MICRO, datasets=("ecg",))
        measurements = result.data["ecg"]
        assert set(measurements) == {"No Diversity", "CAE-Ensemble"}
        assert all(v >= 0 for v in measurements.values())

    def test_table8_structure(self):
        result = EXPERIMENTS["table8"](budget=MICRO, datasets=("ecg",),
                                       n_probe_windows=5)
        assert result.data["CAE"]["ecg"] > 0.0
        assert result.data["CAE-Ensemble"]["ecg"] > 0.0

    def test_figure13_structure(self):
        result = EXPERIMENTS["figure13"](budget=MICRO, datasets=("ecg",),
                                         k_values=(2, 5, 10))
        data = result.data["ecg"]
        assert data["k"] == [2, 5, 10]
        assert len(data["Recall@K"]) == 3
        # Recall at top-K is monotone non-decreasing in K.
        assert data["Recall@K"] == sorted(data["Recall@K"])

    def test_figure16_structure(self):
        result = EXPERIMENTS["figure16"](budget=MICRO, datasets=("ecg",),
                                         max_models=2)
        data = result.data["ecg"]
        assert data["n_models"] == [1, 2]
        assert len(data["PR"]) == 2

    def test_figure17_structure(self):
        result = EXPERIMENTS["figure17"](budget=MICRO, datasets=("ecg",),
                                         kernel_sizes=(3, 5))
        data = result.data["ecg"]
        assert data["kernel_sizes"] == [3, 5]
        assert len(data["F1"]) == 2
