"""Shared fixtures: seeded RNGs, tiny datasets and micro training budgets."""

import numpy as np
import pytest

from repro.datasets.registry import TimeSeriesDataset


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def make_planted_dataset(length: int = 600, dims: int = 3,
                         n_outliers: int = 24, magnitude: float = 8.0,
                         seed: int = 0) -> TimeSeriesDataset:
    """A small sinusoidal series with obvious planted spikes.

    Train is clean; test has ``n_outliers`` labelled spikes — easy enough
    that any functioning detector separates them, which makes it a crisp
    integration oracle.
    """
    generator = np.random.default_rng(seed)
    t = np.arange(2 * length)
    base = np.stack([np.sin(2 * np.pi * t / (20 + 7 * d)) +
                     0.05 * generator.standard_normal(t.shape)
                     for d in range(dims)], axis=1)
    train, test = base[:length].copy(), base[length:].copy()
    labels = np.zeros(length, dtype=np.int64)
    positions = generator.choice(np.arange(10, length - 10),
                                 size=n_outliers, replace=False)
    for position in positions:
        dim = int(generator.integers(dims))
        test[position, dim] += magnitude * generator.choice([-1.0, 1.0])
        labels[position] = 1
    return TimeSeriesDataset("planted", train, test, labels,
                             outlier_ratio=n_outliers / length)


@pytest.fixture
def planted_dataset():
    return make_planted_dataset()


@pytest.fixture
def tiny_windows(rng):
    """A small (N, w, D) window batch for model unit tests."""
    return rng.standard_normal((40, 8, 3))


def sine_regime(n: int, start: int = 0, shift: float = 0.0,
                noise: float = 0.05, seed: int = 0) -> np.ndarray:
    """A 2-D sinusoidal stream segment; ``shift`` models a regime change.

    Segments with the same seed but different ``start`` values continue
    each other's phase, so concatenations read as one continuous stream.
    """
    generator = np.random.default_rng(seed + start)
    t = np.arange(start, start + n)
    base = np.stack([np.sin(2 * np.pi * t / 17),
                     np.cos(2 * np.pi * t / 23)], axis=1)
    return base + shift + noise * generator.standard_normal((n, 2))


def make_stream_ensemble(seed: int = 0, epochs: int = 2):
    """A tiny fitted CAE-Ensemble over the :func:`sine_regime` stream."""
    from repro.core import CAEConfig, CAEEnsemble, EnsembleConfig
    ensemble = CAEEnsemble(
        CAEConfig(input_dim=2, embed_dim=8, window=8, n_layers=1),
        EnsembleConfig(n_models=2, epochs_per_model=epochs, seed=seed,
                       max_training_windows=128))
    ensemble.fit(sine_regime(360, seed=7))
    return ensemble


@pytest.fixture(scope="session")
def stream_ensemble():
    """Session-shared fitted ensemble for streaming tests (scored
    read-only — never mutate it; refreshes build new instances)."""
    return make_stream_ensemble()
