"""Shared fixtures: seeded RNGs, tiny datasets and micro training budgets."""

import os
import random

import numpy as np
import pytest

from repro.datasets.registry import TimeSeriesDataset


def pytest_collection_modifyitems(config, items):
    """Optional seeded shuffle: ``REPRO_TEST_SHUFFLE=<seed>`` randomises
    test order (stdlib only, so it runs on a bare CI runner).  The fast
    lane sets it to flush hidden ordering dependencies — any state one
    test leaks into another reproduces under the same seed."""
    seed = os.environ.get("REPRO_TEST_SHUFFLE")
    if seed:
        random.Random(int(seed)).shuffle(items)


@pytest.fixture(autouse=True)
def _global_state_hygiene():
    """Restore the process-global knobs every test could leak through:
    the fused scorer's autotuned chunk size, the observability default
    registry/tracer, and the shared-memory segment namespace.  Each is
    snapshotted before the test and restored after, so a test that pins
    or swaps them cannot skew a later test's behaviour (or timings)."""
    from repro import faults
    from repro.core.fused import FusedEnsembleScorer
    from repro.obs import registry as obs_registry
    from repro.obs import tracing as obs_tracing
    from repro.runtime import shm
    tuned = FusedEnsembleScorer._tuned_chunk_rows
    registry = obs_registry.default_registry()
    tracer = obs_tracing.default_tracer()
    namespace = shm.segment_namespace()
    yield
    with FusedEnsembleScorer._chunk_tune_lock:
        FusedEnsembleScorer._tuned_chunk_rows = tuned
    obs_registry.set_default_registry(registry)
    obs_tracing.set_default_tracer(tracer)
    shm.set_segment_namespace(namespace)
    faults.clear_plan()      # a leaked fault plan fires in later tests


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def make_planted_dataset(length: int = 600, dims: int = 3,
                         n_outliers: int = 24, magnitude: float = 8.0,
                         seed: int = 0) -> TimeSeriesDataset:
    """A small sinusoidal series with obvious planted spikes.

    Train is clean; test has ``n_outliers`` labelled spikes — easy enough
    that any functioning detector separates them, which makes it a crisp
    integration oracle.
    """
    generator = np.random.default_rng(seed)
    t = np.arange(2 * length)
    base = np.stack([np.sin(2 * np.pi * t / (20 + 7 * d)) +
                     0.05 * generator.standard_normal(t.shape)
                     for d in range(dims)], axis=1)
    train, test = base[:length].copy(), base[length:].copy()
    labels = np.zeros(length, dtype=np.int64)
    positions = generator.choice(np.arange(10, length - 10),
                                 size=n_outliers, replace=False)
    for position in positions:
        dim = int(generator.integers(dims))
        test[position, dim] += magnitude * generator.choice([-1.0, 1.0])
        labels[position] = 1
    return TimeSeriesDataset("planted", train, test, labels,
                             outlier_ratio=n_outliers / length)


@pytest.fixture
def planted_dataset():
    return make_planted_dataset()


@pytest.fixture
def tiny_windows(rng):
    """A small (N, w, D) window batch for model unit tests."""
    return rng.standard_normal((40, 8, 3))


def sine_regime(n: int, start: int = 0, shift: float = 0.0,
                noise: float = 0.05, seed: int = 0) -> np.ndarray:
    """A 2-D sinusoidal stream segment; ``shift`` models a regime change.

    Segments with the same seed but different ``start`` values continue
    each other's phase, so concatenations read as one continuous stream.
    """
    generator = np.random.default_rng(seed + start)
    t = np.arange(start, start + n)
    base = np.stack([np.sin(2 * np.pi * t / 17),
                     np.cos(2 * np.pi * t / 23)], axis=1)
    return base + shift + noise * generator.standard_normal((n, 2))


def make_stream_ensemble(seed: int = 0, epochs: int = 2):
    """A tiny fitted CAE-Ensemble over the :func:`sine_regime` stream."""
    from repro.core import CAEConfig, CAEEnsemble, EnsembleConfig
    ensemble = CAEEnsemble(
        CAEConfig(input_dim=2, embed_dim=8, window=8, n_layers=1),
        EnsembleConfig(n_models=2, epochs_per_model=epochs, seed=seed,
                       max_training_windows=128))
    ensemble.fit(sine_regime(360, seed=7))
    return ensemble


@pytest.fixture(scope="session")
def stream_ensemble():
    """Session-shared fitted ensemble for streaming tests (scored
    read-only — never mutate it; refreshes build new instances)."""
    return make_stream_ensemble()


def fabricate_ensemble(n_models=2, n_layers=1, seed=0, dims=2):
    """A structurally complete ensemble without the training bill:
    packing/publishing only reads weights, so random ones exercise the
    exact same code paths bit-for-bit."""
    from repro.core import CAEConfig, CAEEnsemble, EnsembleConfig
    from repro.core.cae import CAE
    from repro.datasets.preprocess import StandardScaler
    config = CAEConfig(input_dim=dims, embed_dim=8, window=8,
                       n_layers=n_layers)
    ensemble = CAEEnsemble(config,
                           EnsembleConfig(n_models=n_models, seed=seed))
    root = np.random.default_rng(seed)
    ensemble.models = [CAE(config, np.random.default_rng(
        root.integers(2 ** 32))) for _ in range(n_models)]
    ensemble.scaler = StandardScaler().fit(
        np.asarray(sine_regime(64, seed=seed)[:, :dims]))
    return ensemble


def free_tcp_port(host: str = "127.0.0.1") -> int:
    """Bind-then-release an ephemeral TCP port and return its number.

    Every serving test that needs a concrete port goes through this one
    helper (or the fixture below) instead of hard-coding numbers, so
    parallel test runs never collide.  Note the small race window
    between release and reuse — prefer letting the server bind
    ``port=0`` itself and reading ``server.port`` when possible; this
    helper exists for the cases that must know the port *before* the
    bind (e.g. negative tests against an unbound port).
    """
    import socket
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


@pytest.fixture(name="free_tcp_port")
def _free_tcp_port_fixture():
    """Fixture form of :func:`free_tcp_port` for direct injection."""
    return free_tcp_port()


@pytest.fixture
def shm_namespace():
    """A unique shared-memory namespace per test, so segment-leak
    assertions are exact even when tests run concurrently."""
    import secrets
    from repro.runtime import shm
    namespace = f"t{os.getpid()}x{secrets.token_hex(3)}"
    previous = shm.set_segment_namespace(namespace)
    yield namespace
    shm.sweep_orphans(namespace)
    shm.set_segment_namespace(previous)


@pytest.fixture
def mp_handshake():
    """Fresh fork-context gate + started-queue per test, fork-inherited
    into build workers as their ``worker_context`` (mp primitives cannot
    ride inside a pickled job)."""
    import multiprocessing as mp
    ctx = mp.get_context("fork")
    # Everything exists twice: a SIGKILLed worker can die inside an mp
    # primitive's critical section (the Event's condition lock during
    # ``gate.wait()``, the Queue feeder's write lock right after the
    # handshake ``put`` the test killed it in response to), poisoning
    # that primitive for every later user.  Fault-injection tests route
    # post-kill survivors through the untouched second set.
    return {"gate": ctx.Event(), "gate2": ctx.Event(),
            "started": ctx.Queue(), "started2": ctx.Queue(),
            "replacement": fabricate_ensemble(seed=99)}
