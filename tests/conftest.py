"""Shared fixtures: seeded RNGs, tiny datasets and micro training budgets."""

import numpy as np
import pytest

from repro.datasets.registry import TimeSeriesDataset


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def make_planted_dataset(length: int = 600, dims: int = 3,
                         n_outliers: int = 24, magnitude: float = 8.0,
                         seed: int = 0) -> TimeSeriesDataset:
    """A small sinusoidal series with obvious planted spikes.

    Train is clean; test has ``n_outliers`` labelled spikes — easy enough
    that any functioning detector separates them, which makes it a crisp
    integration oracle.
    """
    generator = np.random.default_rng(seed)
    t = np.arange(2 * length)
    base = np.stack([np.sin(2 * np.pi * t / (20 + 7 * d)) +
                     0.05 * generator.standard_normal(t.shape)
                     for d in range(dims)], axis=1)
    train, test = base[:length].copy(), base[length:].copy()
    labels = np.zeros(length, dtype=np.int64)
    positions = generator.choice(np.arange(10, length - 10),
                                 size=n_outliers, replace=False)
    for position in positions:
        dim = int(generator.integers(dims))
        test[position, dim] += magnitude * generator.choice([-1.0, 1.0])
        labels[position] = 1
    return TimeSeriesDataset("planted", train, test, labels,
                             outlier_ratio=n_outliers / length)


@pytest.fixture
def planted_dataset():
    return make_planted_dataset()


@pytest.fixture
def tiny_windows(rng):
    """A small (N, w, D) window batch for model unit tests."""
    return rng.standard_normal((40, 8, 3))
