"""Online threshold calibration: burn-in MAD and decayed quantile."""

import numpy as np
import pytest

from repro.streaming import (BurnInMAD, DecayedQuantile,
                             calibrator_from_state, robust_mad_threshold)


class TestRobustMADThreshold:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        scores = rng.standard_normal(500)
        median = np.median(scores)
        mad = np.median(np.abs(scores - median))
        assert robust_mad_threshold(scores, 8.0) == \
            pytest.approx(median + 8.0 * mad)

    def test_robust_to_contamination(self):
        scores = np.concatenate([np.ones(95), np.full(5, 1e6)])
        # Mean-based levels would explode; median+MAD ignores the spikes.
        assert robust_mad_threshold(scores, 8.0) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            robust_mad_threshold(np.array([]), 8.0)


class TestBurnInMAD:
    def test_calibrates_after_burn_in(self):
        rng = np.random.default_rng(1)
        scores = rng.exponential(size=60)
        calibrator = BurnInMAD(burn_in=50, k=6.0)
        for score in scores[:49]:
            calibrator.observe(score)
            assert calibrator.threshold is None
        calibrator.observe(scores[49])
        assert calibrator.ready
        assert calibrator.threshold == \
            pytest.approx(robust_mad_threshold(scores[:50], 6.0))
        # Frozen after burn-in: later scores do not move it.
        frozen = calibrator.threshold
        for score in scores[50:]:
            calibrator.observe(score)
        assert calibrator.threshold == frozen

    def test_reset_restarts_burn_in(self):
        calibrator = BurnInMAD(burn_in=3, k=1.0)
        for score in (1.0, 2.0, 3.0):
            calibrator.observe(score)
        assert calibrator.ready
        calibrator.reset()
        assert calibrator.threshold is None

    def test_state_round_trip_mid_burn_in(self):
        calibrator = BurnInMAD(burn_in=5, k=2.0)
        calibrator.observe(1.0)
        calibrator.observe(2.0)
        clone = calibrator_from_state(calibrator.state_dict())
        for score in (3.0, 4.0, 5.0):
            calibrator.observe(score)
            clone.observe(score)
        assert clone.threshold == calibrator.threshold
        assert clone.threshold is not None

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BurnInMAD(burn_in=0)
        with pytest.raises(ValueError):
            BurnInMAD(k=0.0)


class TestDecayedQuantile:
    def test_tracks_a_stationary_quantile(self):
        rng = np.random.default_rng(2)
        calibrator = DecayedQuantile(quantile=0.9, decay=0.98, warmup=100)
        for score in rng.uniform(0.0, 1.0, size=4000):
            calibrator.observe(score)
        assert calibrator.ready
        assert 0.8 <= calibrator.threshold <= 1.0

    def test_adapts_to_level_shift(self):
        rng = np.random.default_rng(3)
        calibrator = DecayedQuantile(quantile=0.9, decay=0.95, warmup=50)
        for score in rng.uniform(0.0, 1.0, size=1000):
            calibrator.observe(score)
        before = calibrator.threshold
        for score in rng.uniform(10.0, 11.0, size=3000):
            calibrator.observe(score)
        assert calibrator.threshold > before + 5.0   # followed the shift

    def test_warmup_then_threshold(self):
        calibrator = DecayedQuantile(quantile=0.5, decay=0.9, warmup=4)
        for score in (1.0, 2.0, 3.0):
            calibrator.observe(score)
            assert calibrator.threshold is None
        calibrator.observe(4.0)
        assert calibrator.threshold == pytest.approx(2.5)

    def test_state_round_trip(self):
        rng = np.random.default_rng(4)
        calibrator = DecayedQuantile(quantile=0.8, decay=0.97, warmup=20)
        for score in rng.exponential(size=100):
            calibrator.observe(score)
        clone = calibrator_from_state(calibrator.state_dict())
        assert clone.threshold == calibrator.threshold
        for score in rng.exponential(size=50):
            calibrator.observe(score)
            clone.observe(score)
        assert clone.threshold == calibrator.threshold

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DecayedQuantile(quantile=1.0)
        with pytest.raises(ValueError):
            DecayedQuantile(decay=0.0)
        with pytest.raises(ValueError):
            DecayedQuantile(warmup=1)


def test_unknown_calibrator_kind_rejected():
    with pytest.raises(ValueError):
        calibrator_from_state({"kind": "nope"})
