"""Z-score scaler and chronological train/validation split."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.preprocess import StandardScaler, train_validation_split


class TestStandardScaler:
    def test_transform_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        series = rng.normal(5.0, 3.0, size=(500, 4))
        scaled = StandardScaler().fit_transform(series)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-10)

    def test_train_statistics_applied_to_test(self):
        train = np.array([[0.0], [2.0]])
        scaler = StandardScaler().fit(train)     # mean 1, std 1
        np.testing.assert_allclose(scaler.transform(np.array([[3.0]])),
                                   [[2.0]])

    def test_constant_dimension_not_divided(self):
        series = np.hstack([np.ones((10, 1)),
                            np.arange(10.0).reshape(-1, 1)])
        scaled = StandardScaler().fit_transform(series)
        np.testing.assert_allclose(scaled[:, 0], 0.0)   # centred, not scaled
        assert np.all(np.isfinite(scaled))

    def test_inverse_round_trip(self):
        rng = np.random.default_rng(1)
        series = rng.normal(size=(50, 3)) * 7 + 2
        scaler = StandardScaler().fit(series)
        recovered = scaler.inverse_transform(scaler.transform(series))
        np.testing.assert_allclose(recovered, series, atol=1e-10)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((3, 1)))
        with pytest.raises(RuntimeError):
            StandardScaler().inverse_transform(np.zeros((3, 1)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros(5))

    @given(rows=st.integers(3, 50), cols=st.integers(1, 6),
           shift=st.floats(-100, 100), scale=st.floats(0.1, 50))
    @settings(max_examples=40, deadline=None)
    def test_affine_invariance_property(self, rows, cols, shift, scale):
        """Scaling an affinely transformed series gives the same z-scores."""
        rng = np.random.default_rng(rows * cols)
        base = rng.normal(size=(rows, cols))
        a = StandardScaler().fit_transform(base)
        b = StandardScaler().fit_transform(base * scale + shift)
        np.testing.assert_allclose(a, b, atol=1e-7)


class TestSplit:
    def test_fraction(self):
        series = np.arange(100.0).reshape(-1, 1)
        train, validation = train_validation_split(series, 0.3)
        assert train.shape[0] == 70
        assert validation.shape[0] == 30

    def test_chronological_order_preserved(self):
        series = np.arange(10.0).reshape(-1, 1)
        train, validation = train_validation_split(series, 0.3)
        assert train[-1, 0] < validation[0, 0]

    def test_never_empty(self):
        series = np.zeros((2, 1))
        train, validation = train_validation_split(series, 0.01)
        assert train.shape[0] >= 1 and validation.shape[0] >= 1

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_validation_split(np.zeros((10, 1)), 0.0)
        with pytest.raises(ValueError):
            train_validation_split(np.zeros((10, 1)), 1.0)
