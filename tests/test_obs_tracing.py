"""Unit tests for span tracing (:mod:`repro.obs.tracing`).

The contracts the refresh-lifecycle wiring depends on: parent/child and
trace-id propagation through the thread-local current-span stack,
cross-thread stitching via ``start_span(parent=...)`` and
``tracer.use()``, the bounded ring exporter, and idempotent ``end()``.
"""

import threading

import pytest

from repro.obs import (NullTracer, SpanContext, SpanRing, Tracer,
                       default_tracer, trace, use_tracer)


class TestSpanLifecycle:
    def test_nested_spans_link_parent_child(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                assert tracer.current() is child
            assert tracer.current() is parent
        assert tracer.current() is None
        assert child.parent_id == parent.span_id
        assert child.trace_id == parent.trace_id
        assert parent.parent_id is None

    def test_finished_spans_export_children_first(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        assert [span.name for span in tracer.finished()] == \
            ["child", "parent"]

    def test_end_is_idempotent_and_exports_once(self):
        tracer = Tracer()
        span = tracer.start_span("once")
        span.end()
        first_duration = span.duration
        span.end()
        assert span.duration == first_duration
        assert len(tracer.finished()) == 1

    def test_unended_span_never_exports(self):
        tracer = Tracer()
        tracer.start_span("abandoned")
        assert tracer.finished() == []

    def test_attributes_and_to_dict(self):
        tracer = Tracer()
        span = tracer.start_span("op", rows=128)
        span.set_attribute("mode", "async")
        span.end()
        rendered = span.to_dict()
        assert rendered["name"] == "op"
        assert rendered["attributes"] == {"rows": 128, "mode": "async"}
        assert rendered["duration"] >= 0.0
        assert rendered["parent_id"] is None

    def test_explicit_parent_overrides_current(self):
        tracer = Tracer()
        root = tracer.start_span("root")
        with tracer.span("unrelated"):
            child = tracer.start_span("child", parent=root)
        assert child.parent_id == root.span_id
        assert child.trace_id == root.trace_id

    def test_span_context_is_a_valid_parent(self):
        tracer = Tracer()
        root = tracer.start_span("root")
        context = root.context
        assert isinstance(context, SpanContext)
        child = tracer.start_span("child", parent=context)
        assert child.parent_id == root.span_id
        assert child.trace_id == root.trace_id


class TestCrossThread:
    def test_use_adopts_a_span_on_another_thread(self):
        """The worker-thread pattern: adopt the serve thread's root with
        ``use()`` so new spans nest under it, without ending it."""
        tracer = Tracer()
        root = tracer.start_span("refresh")
        children = []

        def worker():
            with tracer.use(root):
                with tracer.span("refresh.build") as build:
                    children.append(build)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert not root.ended                   # use() never ends
        assert children[0].parent_id == root.span_id
        assert children[0].trace_id == root.trace_id
        assert tracer.current() is None         # main thread unaffected

    def test_current_stack_is_thread_local(self):
        tracer = Tracer()
        observed = []
        with tracer.span("main-only"):
            thread = threading.Thread(
                target=lambda: observed.append(tracer.current()))
            thread.start()
            thread.join()
        assert observed == [None]


class TestSpanRing:
    def test_ring_evicts_oldest_beyond_capacity(self):
        tracer = Tracer(ring_size=4)
        for i in range(10):
            tracer.start_span(f"s{i}").end()
        names = [span.name for span in tracer.finished()]
        assert names == ["s6", "s7", "s8", "s9"]
        assert len(tracer.ring) == 4

    def test_clear_empties_the_ring(self):
        ring = SpanRing(maxlen=8)
        tracer = Tracer()
        span = tracer.start_span("s")
        ring.export(span)
        assert len(ring) == 1
        ring.clear()
        assert ring.spans() == []


class TestDefaultTracerAndHelpers:
    def test_trace_helper_uses_the_active_default(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert default_tracer() is tracer
            with trace("op", rows=3) as span:
                pass
        assert span.attributes == {"rows": 3}
        assert [s.name for s in tracer.finished()] == ["op"]

    def test_use_tracer_restores_on_error(self):
        original = default_tracer()
        with pytest.raises(RuntimeError):
            with use_tracer(Tracer()):
                raise RuntimeError("boom")
        assert default_tracer() is original

    def test_null_tracer_is_inert(self):
        null = NullTracer()
        assert not null.enabled
        span = null.start_span("anything", key="value")
        with null.span("ctx") as inner:
            assert inner is span                # shared singleton
        with null.use(span):
            pass
        span.set_attribute("k", 1)
        span.end()
        assert span.to_dict() == {}
        assert null.finished() == []
        assert null.current() is None
