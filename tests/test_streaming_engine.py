"""The StreamingDetector engine and the multi-stream fleet."""

import numpy as np
import pytest

from repro.streaming import (BurnInMAD, DDMDrift, StreamFleet,
                             StreamingDetector, shared_fleet)
from tests.conftest import sine_regime


class TestStreamingDetector:
    def test_scores_match_score_window(self, stream_ensemble):
        stream = sine_regime(30, start=360)
        detector = StreamingDetector(stream_ensemble, history=64)
        updates = [detector.update(x) for x in stream]
        window = stream_ensemble.cae_config.window
        # First w-1 arrivals cannot complete a window.
        assert all(u.score is None for u in updates[:window - 1])
        for end in (window, window + 5, len(stream)):
            expected = stream_ensemble.score_window(stream[end - window:end])
            assert updates[end - 1].score == pytest.approx(expected,
                                                           rel=1e-12)

    def test_batch_equals_scalar_path(self, stream_ensemble):
        stream = sine_regime(64, start=360)
        scalar = StreamingDetector(stream_ensemble,
                                   calibrator=BurnInMAD(20, 8.0),
                                   history=64)
        batched = StreamingDetector(stream_ensemble,
                                    calibrator=BurnInMAD(20, 8.0),
                                    history=64)
        scalar_updates = [scalar.update(x) for x in stream]
        batched_updates = []
        boundaries = [0, 1, 4, 11, 30, 64]  # ragged micro-batches
        for start, stop in zip(boundaries, boundaries[1:]):
            batched_updates.extend(batched.update_batch(stream[start:stop]))
        assert len(batched_updates) == len(scalar_updates)
        for left, right in zip(scalar_updates, batched_updates):
            assert left.index == right.index
            assert left.alert == right.alert
            if left.score is None:
                assert right.score is None
            else:
                assert right.score == pytest.approx(left.score, rel=1e-9)
        assert batched.threshold == pytest.approx(scalar.threshold,
                                                  rel=1e-9)
        assert scalar.alerts == batched.alerts

    def test_warm_up_enables_immediate_scoring(self, stream_ensemble):
        window = stream_ensemble.cae_config.window
        detector = StreamingDetector(stream_ensemble, history=64)
        detector.warm_up(sine_regime(window - 1, start=360))
        update = detector.update(sine_regime(1, start=367)[0])
        assert update.score is not None
        assert update.index == 0            # warm-up is context, not stream

    def test_alerts_on_planted_spike(self, stream_ensemble):
        stream = sine_regime(120, start=360)
        spiked = stream.copy()
        spiked[100] += 8.0                  # obvious point outlier
        detector = StreamingDetector(stream_ensemble,
                                     calibrator=BurnInMAD(60, 8.0),
                                     history=256)
        detector.warm_up(sine_regime(7, start=353))
        updates = detector.update_batch(spiked)
        assert updates[100].alert
        assert 100 in detector.alerts
        assert detector.n_observations == 120

    def test_no_alerts_without_calibrator(self, stream_ensemble):
        detector = StreamingDetector(stream_ensemble, history=64)
        detector.warm_up(sine_regime(7, start=353))
        updates = detector.update_batch(sine_regime(40, start=360))
        assert detector.threshold is None
        assert not any(u.alert for u in updates)

    def test_drift_events_recorded(self, stream_ensemble):
        detector = StreamingDetector(stream_ensemble,
                                     drift_detector=DDMDrift(min_samples=20),
                                     history=256)
        detector.warm_up(sine_regime(7, start=353))
        detector.update_batch(sine_regime(60, start=360))
        detector.update_batch(sine_regime(80, start=420, shift=3.0))
        drifts = [e for e in detector.drift_events if e.kind == "drift"]
        assert len(drifts) >= 1
        assert drifts[0].index >= 60
        # No refresher attached: the stale ensemble keeps serving.
        assert detector.n_refreshes == 0
        assert detector.ensemble is stream_ensemble

    def test_input_validation(self, stream_ensemble):
        detector = StreamingDetector(stream_ensemble, history=64)
        with pytest.raises(ValueError):
            detector.update(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            detector.update_batch(np.zeros((4, 3)))
        with pytest.raises(ValueError):
            StreamingDetector(stream_ensemble, history=2)
        assert detector.update_batch(np.zeros((0, 2))) == []


class TestStreamFleet:
    def test_streams_are_isolated_but_share_the_ensemble(
            self, stream_ensemble):
        fleet = shared_fleet(stream_ensemble,
                             calibrator_factory=lambda: BurnInMAD(20, 8.0),
                             history=64)
        quiet = sine_regime(40, start=360)
        noisy = sine_regime(40, start=360)
        noisy[30] += 9.0
        fleet.warm_up("quiet", sine_regime(7, start=353))
        fleet.warm_up("noisy", sine_regime(7, start=353))
        fleet.update_many({"quiet": quiet, "noisy": noisy})
        assert fleet.names == ["noisy", "quiet"]
        assert fleet.detector("quiet").ensemble is \
            fleet.detector("noisy").ensemble
        stats = {s.name: s for s in fleet.stats()}
        assert stats["noisy"].n_alerts >= 1
        assert stats["quiet"].n_alerts == 0
        assert fleet.total_observations == 80
        assert len(fleet) == 2 and "quiet" in fleet

    def test_factory_receives_stream_name(self, stream_ensemble):
        seen = []

        def factory(name):
            seen.append(name)
            return StreamingDetector(stream_ensemble, history=64)

        fleet = StreamFleet(factory)
        fleet.update("server-1", np.zeros(2))
        fleet.update("server-1", np.zeros(2))
        fleet.update("server-2", np.zeros(2))
        assert seen == ["server-1", "server-2"]
        assert fleet.detector("server-1").n_observations == 2
