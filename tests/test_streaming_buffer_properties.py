"""Property-based round-trip tests for the streaming buffers.

Seeded ``numpy`` fuzzing over ~200 randomized cases per invariant:

* ``state_dict -> load_state_dict`` is **bit-identical** — including
  through a JSON encode/decode, because that is exactly what
  :mod:`repro.core.persistence` writes to disk — and the restored buffer
  keeps evolving identically afterwards (latent-state check);
* ``push_many`` is exactly equivalent to repeated ``push`` for arbitrary
  chunkings, which is what lets ``update_batch`` and checkpoint restore
  replay the same stream through any batching.

Every case derives from an integer seed, so a failure reproduces from
the printed parametrization alone.
"""

import json

import numpy as np
import pytest

from repro.streaming import (DecayedReservoirBuffer, HistoryBuffer,
                             ReservoirBuffer, SlidingWindow,
                             history_buffer_from_state)

N_CASES = 50          # x4 buffer kinds = 200 fuzz cases


def make_buffer(kind: str, rng: np.random.Generator):
    """A randomly-dimensioned buffer plus an identically-configured twin
    factory (twins must share geometry AND sampling seed)."""
    dims = int(rng.integers(1, 5))
    if kind == "window":
        window = int(rng.integers(1, 9))
        return lambda: SlidingWindow(window, dims), dims
    if kind == "ring":
        capacity = int(rng.integers(1, 33))
        return lambda: HistoryBuffer(capacity, dims), dims
    block = int(rng.integers(1, 9))
    capacity = int(block * rng.integers(1, 6))
    seed = int(rng.integers(0, 2 ** 16))
    if kind == "reservoir":
        return lambda: ReservoirBuffer(capacity, dims, block=block,
                                       seed=seed), dims
    decay = float(rng.uniform(0.05, 0.95))
    return lambda: DecayedReservoirBuffer(capacity, dims, block=block,
                                          seed=seed, decay=decay), dims


def random_chunks(rng: np.random.Generator, total: int):
    """A random partition of ``total`` rows, including empty chunks."""
    cuts = []
    remaining = total
    while remaining > 0:
        take = int(rng.integers(0, remaining + 1))
        cuts.append(take)
        remaining -= take
    rng.shuffle(cuts)
    return cuts


KINDS = ("window", "ring", "reservoir", "decayed_reservoir")


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("case", range(N_CASES))
class TestBufferProperties:
    def test_push_many_equals_repeated_push_any_chunking(self, kind, case):
        rng = np.random.default_rng(1000 * case + KINDS.index(kind) * 211)
        factory, dims = make_buffer(kind, rng)
        total = int(rng.integers(0, 120))
        rows = rng.standard_normal((total, dims))

        scalar = factory()
        for row in rows:
            scalar.push(row)

        chunked = factory()
        cursor = 0
        for take in random_chunks(rng, total):
            chunked.push_many(rows[cursor:cursor + take])
            cursor += take
        assert cursor == total

        assert scalar.state_dict() == chunked.state_dict()
        assert len(scalar) == len(chunked)
        assert scalar.total_pushed == chunked.total_pushed == total

    def test_state_round_trip_is_bit_identical(self, kind, case):
        rng = np.random.default_rng(5000 + 1000 * case + KINDS.index(kind) * 211)
        factory, dims = make_buffer(kind, rng)
        original = factory()
        total = int(rng.integers(0, 120))
        rows = rng.standard_normal((total, dims))
        original.push_many(rows)

        state = original.state_dict()
        # The persistence layer stores this as JSON: the round trip must
        # survive encode/decode exactly (float64 repr round-trips).
        wire_state = json.loads(json.dumps(state))
        restored = factory()
        restored.load_state_dict(wire_state)
        assert restored.state_dict() == state

        # No latent divergence: both continue identically over the same
        # future traffic.
        tail = rng.standard_normal((int(rng.integers(0, 60)), dims))
        original.push_many(tail)
        restored.push_many(tail)
        assert restored.state_dict() == original.state_dict()

    def test_factory_rebuild_matches_loaded_twin(self, kind, case):
        if kind == "window":
            pytest.skip("sliding windows are engine-internal; the factory "
                        "covers refresh corpora")
        rng = np.random.default_rng(9000 + 1000 * case + KINDS.index(kind) * 211)
        factory, dims = make_buffer(kind, rng)
        original = factory()
        original.push_many(rng.standard_normal((int(rng.integers(0, 120)),
                                                dims)))
        state = json.loads(json.dumps(original.state_dict()))
        rebuilt = history_buffer_from_state(state)
        assert type(rebuilt) is type(original)
        assert rebuilt.state_dict() == original.state_dict()
        np.testing.assert_array_equal(rebuilt.to_array(),
                                      original.to_array())
