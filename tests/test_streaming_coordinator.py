"""Deterministic tests for fleet-wide refresh admission control.

Same methodology as ``test_streaming_worker``: gated slow-trainer stubs
make every interleaving controllable from the test thread — builds block
on events we hold, so cap enforcement, dedup fan-out, cancellation and
checkpointing are asserted without sleeps or timing assumptions.
"""

import json
import threading

import numpy as np
import pytest

from repro.core import (CAEConfig, CAEEnsemble, EnsembleConfig,
                        TrainingCancelled, load_fleet, save_fleet)
from repro.metrics import fleet_refresh_report
from repro.streaming import (CoordinatedRefreshClient, RefreshCoordinator,
                             StreamFleet, StreamingDetector)
from tests.conftest import make_stream_ensemble, sine_regime
from tests.test_streaming_worker import (ConstantEnsemble, FireAt,
                                         SlowRefresher, wait_build_started)

GATE_TIMEOUT = 30.0


class CancelAwareRefresher(SlowRefresher):
    """Gated stub whose build honours the coordinator's cancel flag the
    way :meth:`CAEEnsemble.fit` does — by raising TrainingCancelled."""

    def build(self, ensemble, history, index, generation=None,
              trigger_index=None, mode="inline", cancel=None):
        self.build_calls.append((int(index), mode, generation))
        if not self.gate.wait(GATE_TIMEOUT):
            raise RuntimeError("test gate never opened")
        if cancel is not None and cancel.is_set():
            raise TrainingCancelled(0)
        return super().build(ensemble, history, index,
                             generation=generation,
                             trigger_index=trigger_index, mode=mode)


def make_coordinated_detector(ensemble, coordinator, gate, fire_at=(30,),
                              constant=1234.5, refresher_cls=SlowRefresher):
    refresher = refresher_cls(
        ConstantEnsemble(constant, ensemble.cae_config), gate)
    detector = StreamingDetector(ensemble,
                                 drift_detector=FireAt(*fire_at),
                                 refresher=refresher, history=64,
                                 refresh_mode="async",
                                 coordinator=coordinator)
    detector.warm_up(sine_regime(7, start=353))
    return detector, refresher


@pytest.fixture(scope="module")
def second_ensemble():
    """A second distinct fitted ensemble (different identity than the
    session-shared ``stream_ensemble``), for mixed-sharing fleets."""
    return make_stream_ensemble(seed=1)


class TestConcurrencyCap:
    def test_pool_never_exceeds_max_concurrent_builds(self,
                                                      stream_ensemble):
        """5 streams with 5 *distinct* ensembles drift together under a
        cap of 2: exactly 2 builds run at any moment, the rest queue."""
        coordinator = RefreshCoordinator(max_concurrent_builds=2)
        active, peak = [0], [0]
        track = threading.Lock()

        class TrackedRefresher(SlowRefresher):
            """Counts how many builds are *training* at once — the CPU
            the cap is supposed to bound."""

            def build(self, *args, **kwargs):
                kwargs.pop("cancel", None)     # stub ignores the flag
                with track:
                    active[0] += 1
                    peak[0] = max(peak[0], active[0])
                try:
                    return super().build(*args, **kwargs)
                finally:
                    with track:
                        active[0] -= 1

        gates = [threading.Event() for _ in range(5)]
        detectors = []
        for i in range(5):
            # Distinct identity per stream: a private serving stand-in
            # sharing the real ensemble's config.
            private = ConstantEnsemble(0.5, stream_ensemble.cae_config)
            detector, refresher = make_coordinated_detector(
                private, coordinator, gates[i],
                refresher_cls=TrackedRefresher)
            detectors.append((detector, refresher))
        stream = sine_regime(40, start=360)
        for detector, _ in detectors:
            detector.update_batch(stream)

        assert wait_build_started(detectors[0][1])
        assert wait_build_started(detectors[1][1])
        stats = coordinator.stats()
        assert stats.n_running == 2 and stats.n_queued == 3
        assert stats.n_requests == 5 and stats.n_deduped == 0

        # Release one build: exactly one queued build is admitted.
        gates[0].set()
        assert detectors[0][0].wait_for_refresh(GATE_TIMEOUT)
        assert wait_build_started(detectors[2][1])
        assert coordinator.stats().n_running == 2

        for gate in gates:
            gate.set()
        for detector, _ in detectors:
            detector.wait_for_refresh(GATE_TIMEOUT)
            assert detector.n_refreshes == 1
        stats = coordinator.stats()
        assert stats.n_admitted == 5 and stats.n_completed == 5
        assert stats.max_concurrent == 2 == peak[0]
        assert coordinator.drain(GATE_TIMEOUT)

    def test_invalid_configuration_rejected(self, stream_ensemble):
        with pytest.raises(ValueError):
            RefreshCoordinator(max_concurrent_builds=0)
        with pytest.raises(ValueError):
            RefreshCoordinator(policy="lifo")
        with pytest.raises(ValueError, match="refresh_mode"):
            StreamingDetector(stream_ensemble, history=64,
                              coordinator=RefreshCoordinator())

    def test_shared_fleet_validates_admission_needs_async_eagerly(
            self, stream_ensemble):
        from repro.streaming import shared_fleet
        with pytest.raises(ValueError, match="async"):
            shared_fleet(stream_ensemble, max_concurrent_builds=2)

    def test_priority_policy_admits_highest_first(self, stream_ensemble):
        """Under policy='priority' the queue drains highest-priority
        first; FIFO breaks ties."""
        coordinator = RefreshCoordinator(max_concurrent_builds=1,
                                         policy="priority")
        order = []
        coordinator.on_build_start = lambda build: order.append(
            build.priority)
        gate = threading.Event()
        clients = []
        for priority in (0, 1, 5, 3):
            refresher = SlowRefresher(
                ConstantEnsemble(1.0, stream_ensemble.cae_config), gate)
            client = coordinator.client(refresher, priority=priority)
            # Distinct ensembles: no dedup, four separate builds.
            client.submit(ConstantEnsemble(0.0,
                                           stream_ensemble.cae_config),
                          sine_regime(40), trigger_index=30)
            clients.append(client)
        gate.set()
        for client in clients:
            assert client.join(GATE_TIMEOUT)
        assert coordinator.drain(GATE_TIMEOUT)
        # Priority 0 was admitted immediately (empty pool); the queued
        # rest drained highest-first.
        assert order == [0, 5, 3, 1]


class TestDedup:
    def test_shared_ensemble_streams_coalesce_into_one_build(
            self, stream_ensemble):
        """K streams sharing one ensemble and drifting in the same
        window cost exactly one build, fanned out to all K at each
        stream's next boundary."""
        coordinator = RefreshCoordinator(max_concurrent_builds=4)
        gate = threading.Event()
        detectors = [make_coordinated_detector(stream_ensemble,
                                               coordinator, gate)
                     for _ in range(4)]
        stream = sine_regime(120, start=360)
        for detector, _ in detectors:
            detector.update_batch(stream[:40])
        leader = detectors[0][1]
        assert wait_build_started(leader)
        stats = coordinator.stats()
        assert stats.n_requests == 4
        assert stats.n_deduped == 3
        assert stats.n_admitted == 1          # ONE build for four streams
        # Only the leader's refresher ever trains.
        assert all(refresher.build_calls == []
                   for _, refresher in detectors[1:])

        gate.set()
        for detector, _ in detectors:
            assert detector.wait_for_refresh(GATE_TIMEOUT)
            assert detector.n_refreshes == 1
        # Fan-out: every stream now serves the SAME replacement instance
        # (sharing preserved, exactly like save_fleet would dedup it).
        replacement = detectors[0][0].ensemble
        assert replacement is leader.replacement
        assert all(detector.ensemble is replacement
                   for detector, _ in detectors)
        # Each stream still committed its own report with its own trigger.
        for detector, refresher in detectors:
            assert detector.refresh_reports[0].trigger_index == 30
            assert len(refresher.reports) == 1
        report = fleet_refresh_report(coordinator)
        assert report.n_builds == 1 and report.builds_saved == 3
        assert report.dedup_ratio == 0.75 and report.within_cap

    def test_fanned_out_updates_match_independent_builds(
            self, stream_ensemble):
        """Dedup is a pure cost optimisation: the StreamUpdates of a
        coordinated fleet are identical to streams building
        independently (same replacement scores, same swap boundaries)."""
        def run(coordinator):
            gate = threading.Event()
            gate.set()                         # builds are instant
            detectors = [make_coordinated_detector(
                stream_ensemble, coordinator, gate, constant=50.0)
                if coordinator is not None else
                self._independent_detector(stream_ensemble, gate)
                for _ in range(3)]
            stream = sine_regime(120, start=360)
            updates = [[] for _ in detectors]
            for start, stop in ((0, 40), (40, 80), (80, 120)):
                for i, (detector, _) in enumerate(detectors):
                    updates[i].extend(
                        detector.update_batch(stream[start:stop]))
                for detector, _ in detectors:
                    detector.wait_for_refresh(GATE_TIMEOUT)
            reports = [detector.refresh_reports
                       for detector, _ in detectors]
            return updates, reports

        coordinated, coordinated_reports = run(
            RefreshCoordinator(max_concurrent_builds=1))
        independent, independent_reports = run(None)
        assert coordinated == independent      # exact dataclass equality
        assert coordinated_reports == independent_reports

    @staticmethod
    def _independent_detector(ensemble, gate, constant=50.0):
        refresher = SlowRefresher(
            ConstantEnsemble(constant, ensemble.cae_config), gate)
        detector = StreamingDetector(ensemble,
                                     drift_detector=FireAt(30),
                                     refresher=refresher, history=64,
                                     refresh_mode="async")
        detector.warm_up(sine_regime(7, start=353))
        return detector, refresher

    def test_duck_typed_reports_fan_out_without_wedging(
            self, stream_ensemble):
        """Regression: a refresher returning a non-dataclass report must
        not crash the build thread mid-fan-out (which would leave every
        subscriber waiting forever and stall the queue)."""
        # Held closed until every submit has landed: the instant-return
        # build must not finish before the follower joins it, or the
        # dedup below races.
        gate = threading.Event()

        class TokenRefresher:
            n_refreshes = 0

            def build(self, ensemble, history, index, **kwargs):
                if not gate.wait(GATE_TIMEOUT):
                    raise RuntimeError("test gate never opened")
                return "replacement", "report-token"

        coordinator = RefreshCoordinator(max_concurrent_builds=1)
        shared = ConstantEnsemble(0.0, stream_ensemble.cae_config)
        leader = coordinator.client(TokenRefresher())
        follower = coordinator.client(TokenRefresher())
        queued = coordinator.client(TokenRefresher())
        first = leader.submit(shared, sine_regime(40), trigger_index=10)
        second = follower.submit(shared, sine_regime(40),
                                 trigger_index=12)
        behind = queued.submit(
            ConstantEnsemble(1.0, stream_ensemble.cae_config),
            sine_regime(40), trigger_index=14)
        gate.set()
        for handle in (first, second, behind):
            assert handle.wait(GATE_TIMEOUT)   # nothing wedged
            assert handle.ready
            assert handle.replacement == "replacement"
            assert handle.report == "report-token"   # passed through
        assert coordinator.drain(GATE_TIMEOUT)
        stats = coordinator.stats()
        assert stats.n_completed == 2 and stats.n_deduped == 1

    def test_no_dedup_across_distinct_ensembles(self, stream_ensemble,
                                                second_ensemble):
        """Sharing is identity, not architecture: streams on two equal-
        config but distinct ensembles build separately."""
        coordinator = RefreshCoordinator(max_concurrent_builds=2)
        gate = threading.Event()
        gate.set()
        one, _ = make_coordinated_detector(stream_ensemble, coordinator,
                                           gate)
        two, _ = make_coordinated_detector(second_ensemble, coordinator,
                                           gate)
        stream = sine_regime(40, start=360)
        one.update_batch(stream)
        two.update_batch(stream)
        assert one.wait_for_refresh(GATE_TIMEOUT)
        assert two.wait_for_refresh(GATE_TIMEOUT)
        stats = coordinator.stats()
        assert stats.n_admitted == 2 and stats.n_deduped == 0


class TestCooperativeCancellation:
    def test_fit_stops_before_the_next_basic_model(self):
        """The core contract: a cancel flag set after model i is trained
        stops the fit before model i+1 starts, leaving the ensemble
        unfitted."""
        class FlagAfterFirstCheck:
            def __init__(self):
                self.checks = 0

            def is_set(self):
                self.checks += 1
                return self.checks > 1         # set once model 0 trained

        ensemble = CAEEnsemble(
            CAEConfig(input_dim=2, embed_dim=8, window=8, n_layers=1),
            EnsembleConfig(n_models=3, epochs_per_model=1, seed=0,
                           max_training_windows=64))
        with pytest.raises(TrainingCancelled) as excinfo:
            ensemble.fit(sine_regime(100, seed=7),
                         cancel=FlagAfterFirstCheck())
        assert excinfo.value.models_trained == 1
        assert ensemble.models == []           # unfitted, old gen serves

    def test_preset_flag_cancels_before_any_training(self):
        flag = threading.Event()
        flag.set()
        ensemble = CAEEnsemble(
            CAEConfig(input_dim=2, embed_dim=8, window=8, n_layers=1),
            EnsembleConfig(n_models=2, epochs_per_model=1, seed=0))
        with pytest.raises(TrainingCancelled) as excinfo:
            ensemble.fit(sine_regime(100, seed=7), cancel=flag)
        assert excinfo.value.models_trained == 0

    def test_abandoned_build_is_cancelled_mid_flight(self,
                                                     stream_ensemble):
        """When the last subscriber discards its request, the running
        build's cancel flag is set and the build resolves cancelled —
        its result never fans out and the stream keeps the old model."""
        coordinator = RefreshCoordinator(max_concurrent_builds=1)
        gate = threading.Event()
        detector, refresher = make_coordinated_detector(
            stream_ensemble, coordinator, gate,
            refresher_cls=CancelAwareRefresher)
        detector.update_batch(sine_regime(40, start=360))
        assert wait_build_started(refresher)
        handle = detector.pending_refresh
        assert handle is not None and handle.in_flight

        abandoned = detector.refresh_worker.discard()
        assert abandoned is handle
        gate.set()                    # the build now observes the flag
        assert handle.wait(GATE_TIMEOUT)
        assert coordinator.drain(GATE_TIMEOUT)
        stats = coordinator.stats()
        assert stats.n_cancelled == 1
        assert stats.n_completed == 0
        assert handle.status == "discarded"
        assert detector.ensemble is stream_ensemble
        assert detector.n_refreshes == 0

    def test_queued_build_is_dequeued_without_ever_running(
            self, stream_ensemble, second_ensemble):
        coordinator = RefreshCoordinator(max_concurrent_builds=1)
        gate = threading.Event()
        running, _ = make_coordinated_detector(stream_ensemble,
                                               coordinator, gate)
        queued, queued_refresher = make_coordinated_detector(
            second_ensemble, coordinator, gate)
        stream = sine_regime(40, start=360)
        running.update_batch(stream)
        queued.update_batch(stream)
        assert coordinator.stats().n_queued == 1

        queued.refresh_worker.discard()
        stats = coordinator.stats()
        assert stats.n_queued == 0 and stats.n_cancelled == 1
        gate.set()
        assert running.wait_for_refresh(GATE_TIMEOUT)
        # The dequeued build never trained, and the report only counts
        # builds that actually started.
        assert queued_refresher.build_calls == []
        report = fleet_refresh_report(coordinator)
        assert report.n_requests == 2 and report.n_builds == 1
        assert report.n_cancelled == 1

    def test_dedup_never_joins_a_doomed_build(self, stream_ensemble):
        """Regression: a build whose last subscriber discarded it has
        its cancel flag set but may still read 'building' until the
        thread observes the flag — a new request for the same ensemble
        must start a fresh build, not join the doomed one (whose result
        will never fan out)."""
        coordinator = RefreshCoordinator(max_concurrent_builds=1)
        gate = threading.Event()
        first, first_refresher = make_coordinated_detector(
            stream_ensemble, coordinator, gate,
            refresher_cls=CancelAwareRefresher)
        first.update_batch(sine_regime(40, start=360))
        assert wait_build_started(first_refresher)
        doomed = first.refresh_worker.discard()   # cancel flag set,
        assert doomed.status == "discarded"       # thread still gated

        second, second_refresher = make_coordinated_detector(
            stream_ensemble, coordinator, gate,
            refresher_cls=CancelAwareRefresher)
        second.update_batch(sine_regime(40, start=360))
        stats = coordinator.stats()
        assert stats.n_deduped == 0               # did NOT join
        assert stats.n_queued == 1                # fresh build, capped

        gate.set()
        assert second.wait_for_refresh(GATE_TIMEOUT)
        assert second.n_refreshes == 1            # drift answered
        assert coordinator.drain(GATE_TIMEOUT)
        final = coordinator.stats()
        assert final.n_cancelled == 1 and final.n_completed == 1

    def test_direct_coordinator_shutdown_restores_requests_at_boundary(
            self, stream_ensemble):
        """Regression: coordinator.shutdown() called directly (not via
        StreamFleet.shutdown) discards subscriber handles; the engine
        must turn that back into a pending request at its next update
        boundary instead of losing the drift."""
        coordinator = RefreshCoordinator(max_concurrent_builds=1)
        gate = threading.Event()
        detector, refresher = make_coordinated_detector(
            stream_ensemble, coordinator, gate,
            refresher_cls=CancelAwareRefresher)
        detector.update_batch(sine_regime(40, start=360))
        assert wait_build_started(refresher)
        assert not detector._pending_refresh      # cleared at submit

        coordinator.shutdown()
        gate.set()
        assert coordinator.drain(GATE_TIMEOUT)
        update = detector.update(sine_regime(1, start=400)[0])
        assert update.score is not None           # serving unaffected
        assert detector._pending_refresh          # request restored
        detector.drift_detector = None            # stubs can't checkpoint
        assert detector.state_dict()["pending_refresh"]

    def test_checkpoint_right_after_direct_shutdown_keeps_the_request(
            self, stream_ensemble):
        """Regression: a checkpoint taken after coordinator.shutdown()
        but BEFORE the engine's next update boundary must still record
        the (externally discarded) build as a pending request."""
        coordinator = RefreshCoordinator(max_concurrent_builds=1)
        gate = threading.Event()
        refresher = CancelAwareRefresher(
            ConstantEnsemble(5.0, stream_ensemble.cae_config), gate)
        detector = StreamingDetector(stream_ensemble, refresher=refresher,
                                     history=64, refresh_mode="async",
                                     coordinator=coordinator)
        detector.warm_up(sine_regime(7, start=353))
        detector._pending_refresh = True          # a confirmed drift
        detector.update_batch(sine_regime(40, start=360))
        assert wait_build_started(refresher)
        assert not detector._pending_refresh      # cleared at submit

        coordinator.shutdown()                    # handle -> discarded
        gate.set()
        assert coordinator.drain(GATE_TIMEOUT)
        # No update boundary has run: state_dict must still see it.
        state = detector.state_dict()
        assert state["pending_refresh"]
        resumed = StreamingDetector.from_state(stream_ensemble, state)
        assert resumed._pending_refresh

    def test_fleet_shutdown_without_coordinator_gates_private_workers(
            self, stream_ensemble):
        """Regression: on a coordinator-less async fleet, shutdown must
        not let the restored request relaunch a private build at the
        very next update."""
        gate = threading.Event()
        refreshers = {}

        def factory(name):
            refresher = SlowRefresher(
                ConstantEnsemble(7.0, stream_ensemble.cae_config), gate)
            refreshers[name] = refresher
            detector = StreamingDetector(stream_ensemble,
                                         drift_detector=FireAt(30),
                                         refresher=refresher, history=64,
                                         refresh_mode="async")
            detector.warm_up(sine_regime(7, start=353))
            return detector

        fleet = StreamFleet(factory)              # no coordinator
        fleet.update_batch("a", sine_regime(40, start=360))
        assert wait_build_started(refreshers["a"])
        fleet.shutdown()
        gate.set()
        assert fleet.detector("a")._pending_refresh
        # Plenty more traffic: no second private build is spawned.
        fleet.update_batch("a", sine_regime(40, start=400))
        assert len(refreshers["a"].build_calls) == 1
        assert fleet.detector("a")._pending_refresh   # still answerable

    def test_shutdown_racing_the_accepting_check_parks_the_request(
            self, stream_ensemble, monkeypatch):
        """Regression: shutdown can land between the engine's accepting
        check and the submit; the raised AdmissionClosed must park the
        request instead of crashing the serving thread."""
        coordinator = RefreshCoordinator(max_concurrent_builds=1)
        gate = threading.Event()
        gate.set()
        detector, _ = make_coordinated_detector(stream_ensemble,
                                                coordinator, gate)
        coordinator.shutdown()
        # Simulate the race: the engine still observes open admission.
        monkeypatch.setattr(CoordinatedRefreshClient, "accepting",
                            property(lambda self: True))
        updates = detector.update_batch(sine_regime(40, start=360))
        assert all(update.score is not None for update in updates)
        assert detector.n_refreshes == 0
        assert detector._pending_refresh          # parked, not lost
        assert coordinator.stats().n_requests == 0

    def test_fleet_shutdown_cancels_everything(self, stream_ensemble,
                                               second_ensemble):
        coordinator = RefreshCoordinator(max_concurrent_builds=1)
        gate = threading.Event()
        ensembles = {"a": stream_ensemble, "b": second_ensemble}
        refreshers = {}

        def factory(name):
            refresher = CancelAwareRefresher(
                ConstantEnsemble(9.0, stream_ensemble.cae_config), gate)
            refreshers[name] = refresher
            detector = StreamingDetector(ensembles[name],
                                         drift_detector=FireAt(30),
                                         refresher=refresher, history=64,
                                         refresh_mode="async",
                                         coordinator=coordinator)
            detector.warm_up(sine_regime(7, start=353))
            return detector

        fleet = StreamFleet(factory, coordinator=coordinator)
        stream = sine_regime(40, start=360)
        fleet.update_batch("a", stream)      # admitted, held by the gate
        fleet.update_batch("b", stream)      # queued behind the cap
        assert wait_build_started(refreshers["a"])

        fleet.shutdown()
        gate.set()
        assert coordinator.drain(GATE_TIMEOUT)
        stats = coordinator.stats()
        assert stats.n_cancelled == 2 and stats.n_completed == 0
        # The drifts stay answerable: requests were restored per stream.
        assert fleet.detector("a")._pending_refresh
        assert fleet.detector("b")._pending_refresh
        # Scoring still works — the pending request is parked, not
        # re-submitted through the closed queue.
        update = fleet.update("a", sine_regime(1, start=400)[0])
        assert update.score is not None
        assert fleet.detector("a")._pending_refresh
        assert coordinator.stats().n_requests == 2     # nothing new
        # Direct submission against a closed coordinator is an error.
        with pytest.raises(RuntimeError, match="shut down"):
            coordinator.client(refreshers["a"]).submit(
                stream_ensemble, sine_regime(40), trigger_index=1)


class TestFleetCheckpointWithQueuedBuilds:
    def test_save_load_with_running_queued_and_deduped_builds(
            self, stream_ensemble, second_ensemble, tmp_path):
        """The acceptance scenario: a fleet saved while one build runs,
        another is queued, and three streams are deduped subscribers —
        every in-flight build resolves to a per-stream pending request,
        the coordinator's config + counters persist (fleet format v2),
        and the resumed fleet re-runs and re-dedups the builds."""
        ensembles = {"a1": stream_ensemble, "a2": stream_ensemble,
                     "a3": stream_ensemble, "b1": second_ensemble,
                     "b2": second_ensemble}
        names = sorted(ensembles)
        coordinator = RefreshCoordinator(max_concurrent_builds=1)
        gate = threading.Event()
        refreshers = {}

        def make_factory(coord, opened):
            def factory(name):
                refresher = SlowRefresher(
                    ConstantEnsemble(777.0, stream_ensemble.cae_config),
                    opened)
                refreshers[name] = refresher
                detector = StreamingDetector(
                    ensembles[name], refresher=refresher, history=64,
                    refresh_mode="async", coordinator=coord)
                detector.warm_up(sine_regime(7, start=353))
                return detector
            return factory

        fleet = StreamFleet(make_factory(coordinator, gate),
                            coordinator=coordinator)
        stream = sine_regime(40, start=360)
        for name in names:
            detector = fleet.detector(name)
            detector._pending_refresh = True   # a confirmed drift's work
            detector.update_batch(stream)
        assert wait_build_started(refreshers["a1"])
        stats = coordinator.stats()
        # a1 runs; a2/a3 deduped onto it; b1 queued; b2 deduped onto b1.
        assert stats.n_requests == 5 and stats.n_deduped == 3
        assert stats.n_running == 1 and stats.n_queued == 1

        save_fleet(fleet, str(tmp_path / "ckpt"))
        gate.set()                             # release the original

        with open(tmp_path / "ckpt" / "fleet.json") as handle:
            payload = json.load(handle)
        assert payload["format_version"] == 2
        assert payload["coordinator"]["max_concurrent_builds"] == 1
        assert payload["coordinator"]["counters"]["n_deduped"] == 3
        # Two distinct ensembles stored once each, five streams total.
        assert payload["n_ensembles"] == 2
        for name in names:
            assert payload["streams"][name]["state"]["pending_refresh"]

        resumed_gate = threading.Event()       # held: dedup is observable
        resumed_refreshers = []

        def resumed_factory():
            refresher = SlowRefresher(
                ConstantEnsemble(777.0, stream_ensemble.cae_config),
                resumed_gate)
            resumed_refreshers.append(refresher)
            return refresher

        resumed = load_fleet(str(tmp_path / "ckpt"),
                             refresher_factory=resumed_factory)
        assert resumed.coordinator is not None
        assert resumed.coordinator is not coordinator
        assert resumed.coordinator.max_concurrent_builds == 1
        restored_stats = resumed.coordinator.stats()
        assert restored_stats.n_requests == 5      # counters survived
        assert restored_stats.n_deduped == 3
        assert restored_stats.n_running == 0       # queue starts empty
        for name in names:
            detector = resumed.detector(name)
            assert detector.pending_refresh is None    # build discarded
            assert detector._pending_refresh           # request survived
            assert detector.coordinator is resumed.coordinator
        # Shared identity round-tripped: a-streams share one instance.
        assert resumed.detector("a1").ensemble is \
            resumed.detector("a2").ensemble
        assert resumed.detector("b1").ensemble is \
            resumed.detector("b2").ensemble
        assert resumed.detector("a1").ensemble is not \
            resumed.detector("b1").ensemble

        # Driving the resumed fleet re-submits and re-dedups the builds:
        # with the gate held, a1's build runs, a2/a3 join it, b1 queues
        # and b2 joins b1 — the same admission shape as before the save.
        for name in names:
            resumed.update_batch(name, sine_regime(10, start=400))
        mid = resumed.coordinator.stats()
        assert mid.n_requests == 10 and mid.n_deduped == 6
        assert mid.n_running == 1 and mid.n_queued == 1
        resumed_gate.set()
        for name in names:
            assert resumed.detector(name).wait_for_refresh(GATE_TIMEOUT)
            assert resumed.detector(name).n_refreshes == 1
        final = resumed.coordinator.stats()
        assert final.n_admitted == 3           # 1 before + 2 after resume
        assert final.n_completed == 2          # both resumed builds
        assert final.max_concurrent == 1

    def test_new_streams_after_resume_share_the_coordinator(
            self, stream_ensemble, tmp_path):
        """Regression: a detector_factory authored before the resume
        cannot close over the checkpoint's rebuilt coordinator —
        from_state must inject it, or post-resume streams would spawn
        private uncapped workers."""
        coordinator = RefreshCoordinator(max_concurrent_builds=2)

        def factory(name):
            return StreamingDetector(stream_ensemble, history=64,
                                     refresh_mode="async",
                                     coordinator=coordinator)

        fleet = StreamFleet(factory, coordinator=coordinator)
        fleet.warm_up("old", sine_regime(7, start=353))
        fleet.update_batch("old", sine_regime(20, start=360))
        save_fleet(fleet, str(tmp_path / "ckpt"))

        def naive_factory(name):               # knows no coordinator
            return StreamingDetector(stream_ensemble, history=64,
                                     refresh_mode="async")

        resumed = load_fleet(str(tmp_path / "ckpt"),
                             detector_factory=naive_factory)
        assert resumed.coordinator is not None
        fresh = resumed.detector("brand-new")   # first seen post-resume
        assert fresh.coordinator is resumed.coordinator
        assert resumed.detector("old").coordinator is resumed.coordinator

    def test_fleet_v1_checkpoints_still_load(self, stream_ensemble,
                                             tmp_path):
        """A coordinator-less fleet saved today round-trips, and a
        hand-downgraded v1 payload (the pre-coordinator format) loads."""
        from repro.streaming import BurnInMAD, shared_fleet
        fleet = shared_fleet(stream_ensemble,
                             calibrator_factory=lambda: BurnInMAD(20, 8.0),
                             history=64)
        fleet.warm_up("s", sine_regime(7, start=353))
        fleet.update_batch("s", sine_regime(40, start=360))
        save_fleet(fleet, str(tmp_path / "ckpt"))
        path = tmp_path / "ckpt" / "fleet.json"
        payload = json.loads(path.read_text())
        assert payload["coordinator"] is None
        payload["format_version"] = 1
        del payload["coordinator"]
        path.write_text(json.dumps(payload))
        resumed = load_fleet(str(tmp_path / "ckpt"))
        assert resumed.coordinator is None
        tail = sine_regime(20, start=400)
        assert resumed.update_batch("s", tail) == \
            fleet.update_batch("s", tail)
