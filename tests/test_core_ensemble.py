"""CAE-Ensemble training and scoring (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import CAEConfig, CAEEnsemble, EnsembleConfig


@pytest.fixture
def small_series():
    rng = np.random.default_rng(4)
    t = np.arange(400)
    series = np.stack([np.sin(2 * np.pi * t / 25),
                       np.cos(2 * np.pi * t / 40)], axis=1)
    return series + 0.05 * rng.standard_normal(series.shape)


def quick_ensemble(n_models=2, epochs=2, **overrides):
    cae = CAEConfig(input_dim=2, embed_dim=12, window=8, n_layers=1)
    defaults = dict(n_models=n_models, epochs_per_model=epochs,
                    batch_size=32, max_training_windows=200, seed=7)
    defaults.update(overrides)
    return CAEEnsemble(cae, EnsembleConfig(**defaults))


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"n_models": 0}, {"epochs_per_model": 0},
        {"transfer_fraction": 1.5}, {"diversity_weight": -1.0},
        {"batch_size": 0}, {"learning_rate": 0.0},
        {"aggregation": "mode"},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            EnsembleConfig(**kwargs)


class TestTraining:
    def test_fit_produces_m_models(self, small_series):
        ensemble = quick_ensemble(n_models=3).fit(small_series)
        assert ensemble.n_models == 3

    def test_history_records_all_epochs(self, small_series):
        ensemble = quick_ensemble(n_models=2, epochs=3).fit(small_series)
        assert len(ensemble.history) == 6
        assert ensemble.history[0].model_index == 0
        assert ensemble.history[-1].model_index == 1

    def test_loss_decreases_within_first_model(self, small_series):
        ensemble = quick_ensemble(n_models=1, epochs=5).fit(small_series)
        losses = [r.loss for r in ensemble.history]
        assert losses[-1] < losses[0]

    def test_transfer_reports_one_per_later_model(self, small_series):
        ensemble = quick_ensemble(n_models=3,
                                  transfer_fraction=0.5).fit(small_series)
        assert len(ensemble.transfer_reports) == 2
        for report in ensemble.transfer_reports:
            assert 0.3 < report.copied_fraction < 0.7

    def test_no_transfer_when_beta_zero(self, small_series):
        ensemble = quick_ensemble(n_models=2,
                                  transfer_fraction=0.0).fit(small_series)
        assert ensemble.transfer_reports == []

    def test_diversity_term_recorded_for_later_models(self, small_series):
        ensemble = quick_ensemble(n_models=2,
                                  diversity_weight=1.0).fit(small_series)
        first = [r for r in ensemble.history if r.model_index == 0]
        second = [r for r in ensemble.history if r.model_index == 1]
        assert all(r.diversity == 0.0 for r in first)
        assert any(r.diversity > 0.0 for r in second)

    def test_train_seconds_recorded(self, small_series):
        ensemble = quick_ensemble().fit(small_series)
        assert ensemble.train_seconds_ > 0.0

    def test_deterministic_given_seed(self, small_series):
        a = quick_ensemble(seed=3).fit(small_series).score(small_series)
        b = quick_ensemble(seed=3).fit(small_series).score(small_series)
        np.testing.assert_array_equal(a, b)

    def test_dim_mismatch_raises(self, small_series):
        ensemble = quick_ensemble()
        with pytest.raises(ValueError):
            ensemble.fit(np.zeros((100, 5)))

    def test_rejects_1d_series(self):
        with pytest.raises(ValueError):
            quick_ensemble().fit(np.zeros(100))


class TestScoring:
    def test_score_length_matches_series(self, small_series):
        ensemble = quick_ensemble().fit(small_series)
        scores = ensemble.score(small_series)
        assert scores.shape == (small_series.shape[0],)
        assert np.all(scores >= 0)

    def test_score_before_fit_raises(self, small_series):
        with pytest.raises(RuntimeError):
            quick_ensemble().score(small_series)

    def test_n_models_prefix_scoring(self, small_series):
        ensemble = quick_ensemble(n_models=3).fit(small_series)
        one = ensemble.score(small_series, n_models=1)
        three = ensemble.score(small_series, n_models=3)
        assert one.shape == three.shape
        assert not np.allclose(one, three)

    def test_n_models_zero_raises(self, small_series):
        ensemble = quick_ensemble(n_models=2).fit(small_series)
        with pytest.raises(ValueError):
            ensemble.score(small_series, n_models=0)

    def test_median_vs_mean_aggregation(self, small_series):
        median = quick_ensemble(n_models=3, aggregation="median")
        mean = quick_ensemble(n_models=3, aggregation="mean")
        s_median = median.fit(small_series).score(small_series)
        s_mean = mean.fit(small_series).score(small_series)
        assert not np.allclose(s_median, s_mean)

    def test_score_window_matches_batch_path(self, small_series):
        """Online scoring of window i must equal the batch score of the
        corresponding observation (Figure 10 tail entries)."""
        ensemble = quick_ensemble().fit(small_series)
        w = ensemble.cae_config.window
        batch_scores = ensemble.score(small_series)
        for i in (50, 100, 200):
            window = small_series[i - w + 1:i + 1]
            online = ensemble.score_window(window)
            assert online == pytest.approx(batch_scores[i], rel=1e-9)

    def test_score_window_shape_validation(self, small_series):
        ensemble = quick_ensemble().fit(small_series)
        with pytest.raises(ValueError):
            ensemble.score_window(np.zeros((3, 2)))

    def test_detect_with_ratio(self, small_series):
        ensemble = quick_ensemble().fit(small_series)
        predictions = ensemble.detect(small_series, ratio=0.05)
        assert predictions.sum() == pytest.approx(
            0.05 * small_series.shape[0], abs=2)

    def test_detect_with_threshold(self, small_series):
        ensemble = quick_ensemble().fit(small_series)
        scores = ensemble.score(small_series)
        predictions = ensemble.detect(small_series,
                                      threshold=float(np.median(scores)))
        assert 0 < predictions.sum() < small_series.shape[0]

    def test_detect_requires_threshold_or_ratio(self, small_series):
        ensemble = quick_ensemble().fit(small_series)
        with pytest.raises(ValueError):
            ensemble.detect(small_series)

    def test_no_rescale_mode(self, small_series):
        ensemble = quick_ensemble(rescale=False).fit(small_series)
        assert ensemble.scaler is None
        assert ensemble.score(small_series).shape == \
            (small_series.shape[0],)


class TestDiversityBehaviour:
    def test_diversity_weight_raises_ensemble_diversity(self, small_series):
        """The Table 6 claim: training with the diversity objective yields a
        more diverse ensemble than independent training."""
        plain = quick_ensemble(n_models=3, diversity_weight=0.0,
                               transfer_fraction=0.0, epochs=3)
        driven = quick_ensemble(n_models=3, diversity_weight=2.0,
                                transfer_fraction=0.5, epochs=3)
        d_plain = plain.fit(small_series).diversity(small_series[:150])
        d_driven = driven.fit(small_series).diversity(small_series[:150])
        assert d_driven > d_plain

    def test_validation_reconstruction_error_positive(self, small_series):
        ensemble = quick_ensemble().fit(small_series)
        error = ensemble.validation_reconstruction_error(small_series[:100])
        assert error > 0.0


class CancelAfterPolls:
    """Cooperative-cancellation flag that trips after N ``is_set`` polls
    (fit polls once before each basic-model fit)."""

    def __init__(self, polls):
        self.polls = polls

    def is_set(self):
        self.polls -= 1
        return self.polls < 0


class TestRefitDeterminism:
    """The fit-time RNG reset: repeated fits of one instance reproduce
    ("all randomness flows from the seed"), unless reuse_rng opts out."""

    def test_refit_same_instance_reproduces(self, small_series):
        ensemble = quick_ensemble().fit(small_series)
        first_scores = ensemble.score(small_series)
        first_losses = [record.loss for record in ensemble.history]
        ensemble.fit(small_series)
        assert [record.loss for record in ensemble.history] == first_losses
        np.testing.assert_array_equal(ensemble.score(small_series),
                                      first_scores)

    def test_refit_matches_fresh_instance(self, small_series):
        refitted = quick_ensemble().fit(small_series).fit(small_series)
        fresh = quick_ensemble().fit(small_series)
        np.testing.assert_array_equal(refitted.score(small_series),
                                      fresh.score(small_series))

    def test_reuse_rng_continues_the_stream(self, small_series):
        a = quick_ensemble().fit(small_series)
        b = quick_ensemble().fit(small_series)
        a.fit(small_series, reuse_rng=True)
        # The continued stream differs from the seed-reset first fit...
        assert not np.array_equal(a.score(small_series),
                                  b.score(small_series))
        # ...but is still deterministic across instances.
        b.fit(small_series, reuse_rng=True)
        np.testing.assert_array_equal(a.score(small_series),
                                      b.score(small_series))


class TestCancellationRollback:
    """A cancelled fit must leave the ensemble in its exact pre-fit state."""

    def test_fresh_instance_stays_unfitted(self, small_series):
        from repro.core.ensemble import TrainingCancelled
        ensemble = quick_ensemble()
        with pytest.raises(TrainingCancelled):
            ensemble.fit(small_series, cancel=CancelAfterPolls(1))
        assert ensemble.models == []
        assert ensemble.history == []
        assert ensemble.transfer_reports == []
        assert ensemble.train_seconds_ == 0.0
        assert ensemble.scaler is None
        with pytest.raises(RuntimeError, match="fit"):
            ensemble.score(small_series)

    def test_fitted_instance_keeps_serving_old_generation(self, small_series):
        from repro.core.ensemble import TrainingCancelled
        ensemble = quick_ensemble().fit(small_series)
        old_models = ensemble.models
        old_history = list(ensemble.history)
        old_seconds = ensemble.train_seconds_
        old_scores = ensemble.score(small_series)
        shifted = small_series + 0.5
        with pytest.raises(TrainingCancelled) as excinfo:
            ensemble.fit(shifted, cancel=CancelAfterPolls(1))
        assert excinfo.value.models_trained == 1
        assert ensemble.models is old_models
        assert [record.loss for record in ensemble.history] == \
            [record.loss for record in old_history]
        assert ensemble.train_seconds_ == old_seconds
        np.testing.assert_array_equal(ensemble.score(small_series),
                                      old_scores)

    def test_rollback_under_fused_training(self, small_series):
        from repro.core.ensemble import TrainingCancelled
        ensemble = quick_ensemble(fused_training=True).fit(small_series)
        old_scores = ensemble.score(small_series)
        with pytest.raises(TrainingCancelled):
            ensemble.fit(small_series + 0.5, cancel=CancelAfterPolls(1))
        np.testing.assert_array_equal(ensemble.score(small_series),
                                      old_scores)
