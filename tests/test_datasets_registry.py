"""The five named datasets must match the paper's shapes exactly."""

import numpy as np
import pytest

from repro.datasets import (DATASET_NAMES, PAPER_DIMS, PAPER_OUTLIER_RATIOS,
                            load_all, load_dataset)


class TestRegistryContract:
    def test_all_five_present(self):
        assert set(DATASET_NAMES) == {"ecg", "smd", "msl", "smap", "wadi"}

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_dimensionality_matches_paper(self, name):
        dataset = load_dataset(name, scale=0.25)
        assert dataset.dims == PAPER_DIMS[name]

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_outlier_ratio_close_to_paper(self, name):
        dataset = load_dataset(name)
        actual = dataset.test_labels.mean()
        assert abs(actual - PAPER_OUTLIER_RATIOS[name]) < 0.02, \
            f"{name}: {actual} vs {PAPER_OUTLIER_RATIOS[name]}"

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_validates(self, name):
        load_dataset(name, scale=0.25).validate()

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_deterministic(self, name):
        a = load_dataset(name, scale=0.25)
        b = load_dataset(name, scale=0.25)
        np.testing.assert_array_equal(a.train, b.train)
        np.testing.assert_array_equal(a.test, b.test)
        np.testing.assert_array_equal(a.test_labels, b.test_labels)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_seed_changes_draw(self, name):
        a = load_dataset(name, seed=1, scale=0.25)
        b = load_dataset(name, seed=2, scale=0.25)
        assert not np.array_equal(a.test, b.test)

    def test_scale_changes_length(self):
        small = load_dataset("smd", scale=0.25)
        large = load_dataset("smd", scale=0.5)
        assert large.train.shape[0] == 2 * small.train.shape[0]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_dataset("nonexistent")

    def test_load_all_order(self):
        datasets = load_all(scale=0.25)
        assert [d.name for d in datasets] == list(DATASET_NAMES)


class TestDatasetSemantics:
    def test_ecg_train_equals_test(self):
        """Paper protocol: ECG uses the same set for training and testing."""
        dataset = load_dataset("ecg", scale=0.5)
        np.testing.assert_array_equal(dataset.train, dataset.test)

    def test_ecg_train_is_separate_array(self):
        dataset = load_dataset("ecg", scale=0.5)
        dataset.train[0, 0] += 1.0
        assert dataset.train[0, 0] != dataset.test[0, 0]

    @pytest.mark.parametrize("name", ["smd", "msl", "smap", "wadi"])
    def test_train_test_disjoint(self, name):
        dataset = load_dataset(name, scale=0.25)
        assert dataset.train.shape[0] != dataset.test.shape[0] or \
            not np.array_equal(dataset.train, dataset.test)

    def test_wadi_interval_labels(self):
        """WADI anomalies are contiguous intervals, not isolated points."""
        dataset = load_dataset("wadi", scale=0.5)
        labels = dataset.test_labels
        # Longest run of 1s should be much longer than one observation.
        runs, current = [], 0
        for value in labels:
            current = current + 1 if value else 0
            runs.append(current)
        assert max(runs) >= 10

    def test_outliers_have_larger_scores_under_simple_detector(self):
        """The planted anomalies must be detectable in principle: squared
        deviation from the train mean separates classes on average."""
        dataset = load_dataset("smd", scale=0.5)
        mu = dataset.train.mean(axis=0)
        sigma = dataset.train.std(axis=0) + 1e-9
        z = (((dataset.test - mu) / sigma) ** 2).sum(axis=1)
        outlier_mean = z[dataset.test_labels == 1].mean()
        inlier_mean = z[dataset.test_labels == 0].mean()
        assert outlier_mean > inlier_mean

    def test_validate_catches_bad_labels(self):
        dataset = load_dataset("ecg", scale=0.25)
        dataset.test_labels[0] = 2
        with pytest.raises(ValueError):
            dataset.validate()

    def test_validate_catches_misaligned_labels(self):
        dataset = load_dataset("ecg", scale=0.25)
        bad = dataset.__class__(dataset.name, dataset.train, dataset.test,
                                dataset.test_labels[:-1],
                                dataset.outlier_ratio)
        with pytest.raises(ValueError):
            bad.validate()
