"""Synthetic signal generators and outlier injectors."""

import numpy as np
import pytest

from repro.datasets import synthetic as syn


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestSignalComponents:
    def test_sine_period(self, rng):
        t = np.arange(100.0)
        wave = syn.sine_wave(period=25.0, amplitude=2.0)(t, rng)
        np.testing.assert_allclose(wave[0], wave[25], atol=1e-9)
        assert np.abs(wave).max() <= 2.0 + 1e-9

    def test_linear_trend(self, rng):
        t = np.arange(10.0)
        trend = syn.linear_trend(slope=2.0, intercept=1.0)(t, rng)
        np.testing.assert_allclose(trend, 2.0 * t + 1.0)

    def test_random_walk_is_cumulative(self, rng):
        t = np.arange(1000.0)
        walk = syn.random_walk(step_std=1.0)(t, rng)
        # Variance grows with time for a random walk.
        assert np.var(walk[500:]) > np.var(walk[:100])

    def test_level_shifts_piecewise_constant(self, rng):
        t = np.arange(100.0)
        levels = syn.level_shifts(n_levels=4, magnitude=1.0)(t, rng)
        assert len(np.unique(levels)) <= 4

    def test_ecg_beats_are_quasi_periodic(self, rng):
        t = np.arange(500.0)
        beats = syn.ecg_beats(beat_period=50.0, amplitude=3.0)(t, rng)
        # Roughly one dominant peak per period.
        peaks = np.sum((beats[1:-1] > beats[:-2]) & (beats[1:-1] > beats[2:])
                       & (beats[1:-1] > 1.5))
        assert 6 <= peaks <= 14

    def test_square_duty_cycle(self, rng):
        t = np.arange(100.0)
        square = syn.square_duty_cycle(period=10.0, duty=0.5,
                                       amplitude=1.0)(t, rng)
        assert set(np.unique(square)) == {0.0, 1.0}
        np.testing.assert_allclose(square.mean(), 0.5, atol=0.05)

    def test_channel_spec_render(self, rng):
        spec = syn.ChannelSpec([syn.sine_wave(10.0)], noise_std=0.0,
                               offset=5.0, scale=2.0)
        signal = spec.render(50, rng)
        assert signal.shape == (50,)
        np.testing.assert_allclose(signal.mean(), 5.0, atol=0.5)

    def test_render_channels_shape_and_mixing(self, rng):
        specs = [syn.ChannelSpec([syn.sine_wave(10.0)]) for _ in range(3)]
        plain = syn.render_channels(specs, 60, np.random.default_rng(1))
        mixed = syn.render_channels(specs, 60, np.random.default_rng(1),
                                    mixing_strength=1.0)
        assert plain.shape == mixed.shape == (60, 3)
        assert not np.allclose(plain, mixed)


class TestPointInjection:
    def test_marks_labels_and_changes_values(self, rng):
        series = np.zeros((100, 3)) + rng.normal(0, 1, (100, 3))
        original = series.copy()
        labels = np.zeros(100, dtype=np.int64)
        reports = syn.inject_point_outliers(series, labels, count=5,
                                            magnitude=10.0, rng=rng)
        assert labels.sum() == 5
        assert len(reports) == 5
        changed = np.any(series != original, axis=1)
        np.testing.assert_array_equal(np.flatnonzero(labels),
                                      np.flatnonzero(changed))

    def test_zero_count_noop(self, rng):
        series = np.zeros((10, 2))
        labels = np.zeros(10, dtype=np.int64)
        assert syn.inject_point_outliers(series, labels, 0, 5.0, rng) == []
        assert labels.sum() == 0

    def test_magnitude_scales_with_std(self, rng):
        series = rng.normal(0, 2.0, (200, 1))
        labels = np.zeros(200, dtype=np.int64)
        reports = syn.inject_point_outliers(series, labels, count=1,
                                            magnitude=10.0, rng=rng)
        position = reports[0].start
        assert abs(series[position, 0]) > 5.0


class TestContextualInjection:
    def test_value_becomes_global_mean(self, rng):
        t = np.arange(200.0)
        series = np.sin(t / 5).reshape(-1, 1) * 10
        labels = np.zeros(200, dtype=np.int64)
        means = series.mean(axis=0)
        reports = syn.inject_contextual_outliers(series, labels, count=3,
                                                 rng=rng)
        for report in reports:
            np.testing.assert_allclose(series[report.start, report.dims[0]],
                                       means[report.dims[0]])
        assert labels.sum() == 3


class TestIntervalInjection:
    def test_shift_mode_labels_interval(self, rng):
        series = rng.normal(size=(300, 4))
        labels = np.zeros(300, dtype=np.int64)
        reports = syn.inject_interval_outliers(series, labels, n_intervals=2,
                                               interval_length=20,
                                               magnitude=5.0, rng=rng)
        assert labels.sum() >= 20     # intervals may overlap
        for report in reports:
            assert report.stop - report.start == 20

    def test_flatline_mode(self, rng):
        series = rng.normal(size=(200, 2))
        labels = np.zeros(200, dtype=np.int64)
        reports = syn.inject_interval_outliers(series, labels, n_intervals=1,
                                               interval_length=15,
                                               magnitude=1.0, rng=rng,
                                               dims_fraction=1.0,
                                               mode="flatline")
        report = reports[0]
        segment = series[report.start:report.stop, report.dims[0]]
        assert np.all(segment == segment[0])

    def test_core_fraction_limits_actual_deviation(self, rng):
        """WADI semantics: labels cover the whole interval but only the
        core truly deviates — the structural recall cap."""
        series = np.zeros((500, 2))
        labels = np.zeros(500, dtype=np.int64)
        reports = syn.inject_interval_outliers(
            series, labels, n_intervals=1, interval_length=40, magnitude=5.0,
            rng=rng, dims_fraction=1.0, mode="noise",
            label_whole_interval=True, core_fraction=0.25)
        report = reports[0]
        labelled = labels[report.start:report.stop].sum()
        deviating = int(np.any(series != 0.0, axis=1).sum())
        assert labelled == 40
        assert deviating <= 12   # only the ~25% core was touched

    def test_unknown_mode_raises(self, rng):
        with pytest.raises(ValueError):
            syn.inject_interval_outliers(np.zeros((100, 1)),
                                         np.zeros(100, dtype=np.int64),
                                         1, 10, 1.0, rng, mode="bogus")
