"""Fleet-level checkpointing: save/load a StreamFleet mid-stream.

The acceptance bar: after a save/load round trip, every subsequent
:class:`StreamUpdate` (scores, alerts, drift events, thresholds) is
*identical* to the uninterrupted run — frozen dataclasses compared
exactly, no tolerances.  Plus the deterministic resolution of a detector
saved mid-async-refresh: the half-built replacement is discarded, the
request survives, and the resumed stream rebuilds it.
"""

import os
import threading

import numpy as np
import pytest

from repro.core import load_fleet, save_fleet
from repro.streaming import (BurnInMAD, DDMDrift, EnsembleRefresher,
                             shared_fleet)
from tests.conftest import sine_regime
from tests.test_streaming_worker import (ConstantEnsemble, SlowRefresher,
                                         wait_build_started)

STREAMS = ["web-1", "web-2", "db-1", "db-2", "cache-1"]


def stream_traffic(name: str, n: int, start: int):
    """Per-stream deterministic traffic: distinct phase and noise per
    stream, one with a planted spike and one with a regime shift."""
    offset = 37 * STREAMS.index(name)
    series = sine_regime(n, start=start + offset, seed=STREAMS.index(name))
    if name == "web-2":
        series[n // 2] += 9.0                 # planted point outlier
    if name == "db-1" and start >= 420:
        series += 2.5                         # regime change mid-stream
    return series


def make_fleet(stream_ensemble):
    return shared_fleet(stream_ensemble,
                        calibrator_factory=lambda: BurnInMAD(20, 8.0),
                        drift_factory=lambda: DDMDrift(min_samples=15),
                        history=128)


def drive(fleet, n, start):
    return {name: fleet.update_batch(name, stream_traffic(name, n, start))
            for name in STREAMS}


class TestFleetRoundTrip:
    def test_five_stream_fleet_resumes_identically(self, stream_ensemble,
                                                   tmp_path):
        """Save a 5-stream fleet mid-stream; every subsequent StreamUpdate
        must match the uninterrupted run exactly."""
        fleet = make_fleet(stream_ensemble)
        for name in STREAMS:
            fleet.warm_up(name, sine_regime(7, start=300,
                                            seed=STREAMS.index(name)))
        drive(fleet, 40, start=360)

        save_fleet(fleet, str(tmp_path / "ckpt"))
        resumed = load_fleet(str(tmp_path / "ckpt"))

        assert resumed.names == fleet.names
        assert resumed.total_observations == fleet.total_observations
        # The shared ensemble was stored once and is shared again.
        first = resumed.detector(STREAMS[0]).ensemble
        assert all(resumed.detector(name).ensemble is first
                   for name in STREAMS)
        assert len(list((tmp_path / "ckpt").glob("ensemble_*"))) == 1

        # Both fleets continue over identical future traffic, in ragged
        # micro-batches, and must emit identical updates throughout.
        for chunk_start, chunk in ((400, 13), (413, 1), (414, 26)):
            for name in STREAMS:
                traffic = stream_traffic(name, chunk, chunk_start)
                left = fleet.update_batch(name, traffic)
                right = resumed.update_batch(name, traffic)
                assert left == right          # exact: scores, thresholds,
                #                               alerts, drift, refreshed
        for name in STREAMS:
            original = fleet.detector(name)
            restored = resumed.detector(name)
            assert restored.alerts == original.alerts
            assert restored.drift_events == original.drift_events
            assert restored.threshold == original.threshold
        stats_left = {s.name: s for s in fleet.stats()}
        stats_right = {s.name: s for s in resumed.stats()}
        assert stats_left == stats_right
        # The planted spike and only it alerted on web-2's stream.
        assert stats_right["web-2"].n_alerts >= 1

    def test_private_refreshed_ensembles_are_stored_separately(
            self, stream_ensemble, tmp_path):
        """A stream whose refresh replaced the shared ensemble gets its
        own weights directory; the rest still share one."""
        fleet = shared_fleet(
            stream_ensemble,
            drift_factory=lambda: DDMDrift(min_samples=15),
            refresher_factory=lambda: EnsembleRefresher(
                min_history=64, epochs_per_model=1),
            history=128)
        for name in STREAMS:
            fleet.warm_up(name, sine_regime(7, start=300,
                                            seed=STREAMS.index(name)))
        drive(fleet, 40, start=360)
        # Drive only db-1 (the shifted stream) until it refreshes.
        shifted = stream_traffic("db-1", 120, 420)
        fleet.update_batch("db-1", shifted)
        assert fleet.detector("db-1").n_refreshes >= 1
        assert fleet.detector("db-1").ensemble is not stream_ensemble

        save_fleet(fleet, str(tmp_path / "ckpt"))
        assert len(list((tmp_path / "ckpt").glob("ensemble_*"))) == 2
        resumed = load_fleet(
            str(tmp_path / "ckpt"),
            refresher_factory=lambda: EnsembleRefresher(
                min_history=64, epochs_per_model=1))
        # Non-refreshed streams share one instance; db-1 has its own.
        shared = resumed.detector("web-1").ensemble
        assert resumed.detector("cache-1").ensemble is shared
        assert resumed.detector("db-1").ensemble is not shared
        # Refresh bookkeeping round-tripped, including the cooldown clock.
        original = fleet.detector("db-1")
        restored = resumed.detector("db-1")
        assert restored.refresh_reports == original.refresh_reports
        assert restored.refresher.last_refresh_index == \
            original.refresh_reports[-1].index
        # And the restored pair still scores identically.
        tail = stream_traffic("db-1", 30, 540)
        assert fleet.update_batch("db-1", tail) == \
            resumed.update_batch("db-1", tail)

    def test_new_streams_need_a_factory(self, stream_ensemble, tmp_path):
        fleet = make_fleet(stream_ensemble)
        drive(fleet, 20, start=360)
        save_fleet(fleet, str(tmp_path / "ckpt"))
        resumed = load_fleet(str(tmp_path / "ckpt"))
        with pytest.raises(KeyError):
            resumed.update("brand-new", np.zeros(2))
        growable = load_fleet(
            str(tmp_path / "ckpt"),
            detector_factory=lambda name: make_fleet(stream_ensemble)
            .detector(name))
        growable.update_batch("brand-new", sine_regime(10, start=0))
        assert "brand-new" in growable

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_fleet(str(tmp_path / "nowhere"))


class TestMidAsyncRefreshSave:
    def test_in_flight_build_is_discarded_and_request_survives(
            self, stream_ensemble, tmp_path):
        """Saving a fleet while one detector's async build is in flight
        resolves deterministically: the build is dropped, the pending
        request is persisted, and the resumed detector re-runs the
        refresh from its restored corpus."""
        gates = {}

        def refresher_factory():
            gate = threading.Event()
            refresher = SlowRefresher(
                ConstantEnsemble(777.0, stream_ensemble.cae_config), gate)
            gates[id(refresher)] = gate
            return refresher

        fleet = shared_fleet(stream_ensemble,
                             drift_factory=lambda: DDMDrift(min_samples=15),
                             refresher_factory=refresher_factory,
                             history=128, refresh_mode="async")
        for name in STREAMS:
            fleet.warm_up(name, sine_regime(7, start=300,
                                            seed=STREAMS.index(name)))
        drive(fleet, 40, start=360)
        # A persistent shift on one stream confirms drift and launches an
        # async build, which the gate holds open.
        building = fleet.detector(STREAMS[0])
        fleet.update_batch(STREAMS[0],
                           sine_regime(60, start=400, seed=0) + 3.0)
        assert wait_build_started(building.refresher)
        assert building.pending_refresh is not None
        assert building.pending_refresh.in_flight

        # Save while the build is held open: deterministic by contract.
        save_fleet(fleet, str(tmp_path / "ckpt"))
        for gate in gates.values():
            gate.set()                  # release the original's builds

        resumed_refreshers = []

        def resumed_factory():
            refresher = refresher_factory()
            gates[id(refresher)].set()  # resumed builds run instantly
            resumed_refreshers.append(refresher)
            return refresher

        resumed = load_fleet(str(tmp_path / "ckpt"),
                             refresher_factory=resumed_factory)
        for name in STREAMS:
            detector = resumed.detector(name)
            assert detector.n_refreshes == 0
            assert detector.pending_refresh is None     # build discarded
        restored = resumed.detector(STREAMS[0])
        assert restored._pending_refresh                # request survived
        # A quiet stream (no spike, no shift, so no drift) carries none.
        assert not resumed.detector("cache-1")._pending_refresh

        # The resumed detector re-runs the refresh on fresh traffic.
        restored.update_batch(stream_traffic(STREAMS[0], 10, 400))
        assert restored.wait_for_refresh(timeout=30)
        assert restored.n_refreshes == 1
        assert restored.ensemble.score_windows_last(
            np.zeros((1, stream_ensemble.cae_config.window, 2)))[0] == 777.0
        # The rebuilt corpus fed the build: it used restored history.
        rebuilt_report = restored.refresh_reports[0]
        assert rebuilt_report.mode == "async"
        assert rebuilt_report.history_length >= 40


class TestCommittedFormatFixtures:
    """Back-compat regression guard: the committed checkpoints under
    ``tests/data/fleet_checkpoint_v{1,2}`` were written by earlier (v1)
    and current (v2) writers and must keep loading forever.  Regenerate
    only when minting a NEW version (``tools/make_checkpoint_fixtures
    .py``) — never rewrite the old ones."""

    FIXTURES = os.path.join(os.path.dirname(__file__), "data")

    def load_fixture(self, version: int):
        return load_fleet(os.path.join(self.FIXTURES,
                                       f"fleet_checkpoint_v{version}"))

    @pytest.mark.parametrize("version", [1, 2])
    def test_fixture_loads_and_scores(self, version):
        fleet = self.load_fixture(version)
        assert fleet.names == ["alpha", "beta"]
        for name in fleet.names:
            updates = fleet.update_batch(name,
                                         sine_regime(4, start=28, seed=42))
            assert len(updates) == 4
            assert all(np.isfinite(update.score) for update in updates)

    def test_v1_has_no_coordinator_v2_rebuilds_one(self):
        assert self.load_fixture(1).coordinator is None
        coordinator = self.load_fixture(2).coordinator
        assert coordinator is not None
        assert coordinator.max_concurrent_builds == 1
        coordinator.shutdown()

    def test_v1_and_v2_resume_bit_identically(self):
        # Same fleet, two formats: future traffic must score the same.
        old, new = self.load_fixture(1), self.load_fixture(2)
        traffic = sine_regime(6, start=28, seed=42)
        for name in old.names:
            for from_v1, from_v2 in zip(old.update_batch(name, traffic),
                                        new.update_batch(name, traffic)):
                assert from_v1.score == from_v2.score
                assert from_v1.index == from_v2.index
                assert from_v1.threshold == from_v2.threshold
        if new.coordinator is not None:
            new.coordinator.shutdown()
