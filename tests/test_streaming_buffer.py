"""Ring-buffer semantics of the streaming subsystem."""

import numpy as np
import pytest

from repro.streaming import HistoryBuffer, SlidingWindow


class TestSlidingWindow:
    def test_fills_then_slides(self):
        window = SlidingWindow(window=3, dims=2)
        rows = np.arange(10.0).reshape(5, 2)
        assert not window.ready
        window.push(rows[0])
        window.push(rows[1])
        assert not window.ready
        with pytest.raises(RuntimeError):
            window.view()
        window.push(rows[2])
        assert window.ready
        np.testing.assert_array_equal(window.view(), rows[:3])
        window.push(rows[3])
        np.testing.assert_array_equal(window.view(), rows[1:4])
        window.push(rows[4])
        np.testing.assert_array_equal(window.view(), rows[2:5])

    def test_view_is_zero_copy(self):
        window = SlidingWindow(window=4, dims=1)
        window.push_many(np.arange(4.0).reshape(4, 1))
        view = window.view()
        assert view.base is not None          # a view, not a copy
        assert not view.flags.writeable
        # Long streams keep yielding views of the same backing buffer.
        backing = view.base
        window.push_many(np.arange(100.0).reshape(100, 1))
        assert window.view().base is backing

    def test_push_many_matches_scalar_pushes(self):
        rng = np.random.default_rng(0)
        rows = rng.standard_normal((57, 3))
        bulk = SlidingWindow(window=5, dims=3)
        scalar = SlidingWindow(window=5, dims=3)
        for row in rows:
            scalar.push(row)
        # Mixed batch sizes, including batches larger than the window.
        for chunk in (rows[:2], rows[2:3], rows[3:20], rows[20:57]):
            bulk.push_many(chunk)
        np.testing.assert_array_equal(bulk.view(), scalar.view())
        assert bulk.total_pushed == scalar.total_pushed == 57

    def test_tail(self):
        window = SlidingWindow(window=4, dims=1)
        window.push_many(np.arange(6.0).reshape(6, 1))
        np.testing.assert_array_equal(window.tail(2),
                                      np.array([[4.0], [5.0]]))
        assert window.tail(0).shape == (0, 1)
        with pytest.raises(ValueError):
            window.tail(5)

    def test_rejects_bad_shapes_and_values(self):
        window = SlidingWindow(window=3, dims=2)
        with pytest.raises(ValueError):
            window.push(np.zeros(3))
        with pytest.raises(ValueError):
            window.push_many(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            window.push(np.array([np.nan, 0.0]))

    def test_state_round_trip(self):
        window = SlidingWindow(window=4, dims=2)
        window.push_many(np.arange(22.0).reshape(11, 2))
        clone = SlidingWindow(window=4, dims=2)
        clone.load_state_dict(window.state_dict())
        np.testing.assert_array_equal(clone.view(), window.view())
        assert clone.total_pushed == window.total_pushed
        # Both continue identically.
        window.push(np.array([100.0, 101.0]))
        clone.push(np.array([100.0, 101.0]))
        np.testing.assert_array_equal(clone.view(), window.view())

    def test_state_geometry_mismatch(self):
        window = SlidingWindow(window=4, dims=2)
        other = SlidingWindow(window=3, dims=2)
        with pytest.raises(ValueError):
            other.load_state_dict(window.state_dict())


class TestHistoryBuffer:
    def test_chronological_recovery(self):
        history = HistoryBuffer(capacity=5, dims=1)
        rows = np.arange(8.0).reshape(8, 1)
        history.push_many(rows[:3])
        np.testing.assert_array_equal(history.to_array(), rows[:3])
        history.push_many(rows[3:])
        assert len(history) == 5
        np.testing.assert_array_equal(history.to_array(), rows[3:])
        assert history.total_pushed == 8

    def test_oversized_batch_keeps_newest(self):
        history = HistoryBuffer(capacity=3, dims=1)
        history.push_many(np.arange(10.0).reshape(10, 1))
        np.testing.assert_array_equal(history.to_array(),
                                      np.array([[7.0], [8.0], [9.0]]))

    def test_state_round_trip(self):
        history = HistoryBuffer(capacity=4, dims=2)
        history.push_many(np.arange(18.0).reshape(9, 2))
        clone = HistoryBuffer(capacity=4, dims=2)
        clone.load_state_dict(history.state_dict())
        np.testing.assert_array_equal(clone.to_array(), history.to_array())
        assert clone.total_pushed == history.total_pushed
