"""Event-level metrics: point-adjust and event reports (WADI semantics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (event_report, f1_score, label_segments,
                           point_adjust, point_adjusted_prf, recall_score)


class TestLabelSegments:
    def test_no_segments(self):
        assert label_segments(np.zeros(5, dtype=int)) == []

    def test_single_segment(self):
        labels = np.array([0, 1, 1, 1, 0])
        assert label_segments(labels) == [(1, 4)]

    def test_segment_at_edges(self):
        labels = np.array([1, 1, 0, 0, 1])
        assert label_segments(labels) == [(0, 2), (4, 5)]

    def test_all_ones(self):
        assert label_segments(np.ones(4, dtype=int)) == [(0, 4)]

    def test_rejects_nonbinary(self):
        with pytest.raises(ValueError):
            label_segments(np.array([0, 2]))

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_segments_cover_exactly_the_ones(self, bits):
        labels = np.array(bits)
        covered = np.zeros(len(bits), dtype=int)
        for start, stop in label_segments(labels):
            assert stop > start
            covered[start:stop] = 1
        np.testing.assert_array_equal(covered, labels)


class TestPointAdjust:
    def test_hit_expands_to_whole_segment(self):
        labels = np.array([0, 1, 1, 1, 0])
        predictions = np.array([0, 0, 1, 0, 0])
        adjusted = point_adjust(labels, predictions)
        np.testing.assert_array_equal(adjusted, [0, 1, 1, 1, 0])

    def test_missed_segment_unchanged(self):
        labels = np.array([0, 1, 1, 0, 1, 1])
        predictions = np.array([0, 0, 0, 0, 1, 0])
        adjusted = point_adjust(labels, predictions)
        np.testing.assert_array_equal(adjusted, [0, 0, 0, 0, 1, 1])

    def test_false_positives_preserved(self):
        labels = np.array([0, 0, 1, 1])
        predictions = np.array([1, 0, 1, 0])
        adjusted = point_adjust(labels, predictions)
        np.testing.assert_array_equal(adjusted, [1, 0, 1, 1])

    def test_adjusted_recall_never_lower(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            labels = (rng.random(50) < 0.3).astype(int)
            predictions = (rng.random(50) < 0.2).astype(int)
            raw = recall_score(labels, predictions)
            adjusted = recall_score(labels,
                                    point_adjust(labels, predictions))
            assert adjusted >= raw - 1e-12

    def test_point_adjusted_prf_on_wadi_style_labels(self):
        """One flagged core observation recovers the whole interval —
        the Section 4.2.1 discussion quantified."""
        labels = np.zeros(100, dtype=int)
        labels[40:60] = 1                      # long labelled interval
        predictions = np.zeros(100, dtype=int)
        predictions[50] = 1                    # only the true core flagged
        raw_f1 = f1_score(labels, predictions)
        _, adjusted_recall, adjusted_f1 = point_adjusted_prf(labels,
                                                             predictions)
        assert raw_f1 < 0.1
        assert adjusted_recall == 1.0
        assert adjusted_f1 > 0.9

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            point_adjust(np.zeros(3, dtype=int), np.zeros(4, dtype=int))


class TestEventReport:
    def test_counts(self):
        labels = np.array([0, 1, 1, 0, 1, 0, 0])
        predictions = np.array([0, 1, 0, 0, 0, 1, 0])
        report = event_report(labels, predictions)
        assert report.n_events == 2
        assert report.n_detected == 1
        assert report.event_recall == 0.5

    def test_point_precision(self):
        labels = np.array([0, 1, 1, 0])
        predictions = np.array([1, 1, 0, 0])
        report = event_report(labels, predictions)
        assert report.point_precision == 0.5    # 1 of 2 flags correct

    def test_no_events(self):
        report = event_report(np.zeros(5, dtype=int),
                              np.zeros(5, dtype=int))
        assert report.n_events == 0
        assert report.event_recall == 0.0
        assert report.f1 == 0.0

    def test_perfect_detection(self):
        labels = np.array([0, 1, 1, 0, 1])
        report = event_report(labels, labels)
        assert report.event_recall == 1.0
        assert report.point_precision == 1.0
        assert report.f1 == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            event_report(np.zeros(3, dtype=int), np.zeros(4, dtype=int))


class TestStreamEventReport:
    def test_latency_per_segment(self):
        from repro.metrics import stream_event_report
        #        segment A: 2..5      segment B: 8..10
        labels = np.array([0, 0, 1, 1, 1, 1, 0, 0, 1, 1, 0])
        report = stream_event_report(labels, alert_indices=[4, 5, 8],
                                     drift_indices=[6], n_refreshes=1)
        assert report.n_events == 2
        assert report.n_detected == 2
        assert report.latencies == (2, 0)   # first alerts at 4 and 8
        assert report.mean_latency == 1.0
        assert report.event_recall == 1.0
        assert report.n_false_alarms == 0
        assert report.n_drift_events == 1
        assert report.n_refreshes == 1

    def test_false_alarms_and_misses(self):
        from repro.metrics import stream_event_report
        labels = np.array([0, 0, 1, 1, 0, 0, 1, 0])
        report = stream_event_report(labels, alert_indices=[0, 5])
        assert report.n_events == 2
        assert report.n_detected == 0
        assert report.latencies == ()
        assert np.isnan(report.mean_latency)
        assert report.n_false_alarms == 2
        assert report.n_alerts == 2

    def test_unsorted_alerts_use_earliest(self):
        from repro.metrics import stream_event_report
        labels = np.array([0, 1, 1, 1, 0])
        report = stream_event_report(labels, alert_indices=[3, 1])
        assert report.latencies == (0,)

    def test_out_of_range_alert_rejected(self):
        from repro.metrics import stream_event_report
        with pytest.raises(ValueError):
            stream_event_report(np.zeros(4, dtype=int), alert_indices=[4])

    def test_from_streaming_run(self, stream_ensemble):
        """End-to-end: the engine's counters feed the report directly."""
        from repro.metrics import stream_event_report
        from repro.streaming import BurnInMAD, StreamingDetector
        from tests.conftest import sine_regime
        stream = sine_regime(140, start=360)
        labels = np.zeros(140, dtype=int)
        for position in (100, 120):
            stream[position] += 8.0
            labels[position] = 1
        detector = StreamingDetector(stream_ensemble,
                                     calibrator=BurnInMAD(60, 8.0),
                                     history=256)
        detector.warm_up(sine_regime(7, start=353))
        detector.update_batch(stream)
        report = stream_event_report(
            labels, detector.alerts,
            drift_indices=[e.index for e in detector.drift_events],
            n_refreshes=detector.n_refreshes)
        assert report.n_events == 2
        assert report.n_detected == 2
        assert report.mean_latency == 0.0   # point outliers: caught on hit
