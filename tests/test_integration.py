"""End-to-end integration tests: the paper's qualitative claims on planted
data, the full pipeline, and the experiment CLI."""

import subprocess
import sys

import numpy as np
import pytest

from repro.core import CAEConfig, CAEEnsemble, EnsembleConfig
from repro.metrics import accuracy_report, roc_auc
from tests.conftest import make_planted_dataset


@pytest.fixture(scope="module")
def planted():
    return make_planted_dataset(length=600, dims=3, n_outliers=24)


@pytest.fixture(scope="module")
def fitted_ensemble(planted):
    cae = CAEConfig(input_dim=3, embed_dim=16, window=8, n_layers=2)
    config = EnsembleConfig(n_models=3, epochs_per_model=2, batch_size=64,
                            max_training_windows=400, seed=0)
    return CAEEnsemble(cae, config).fit(planted.train)


class TestEndToEndDetection:
    def test_high_roc_on_planted_outliers(self, planted, fitted_ensemble):
        scores = fitted_ensemble.score(planted.test)
        assert roc_auc(planted.test_labels, scores) > 0.9

    def test_report_beats_random_baseline(self, planted, fitted_ensemble):
        scores = fitted_ensemble.score(planted.test)
        report = accuracy_report(planted.test_labels, scores)
        random_scores = np.random.default_rng(0).random(scores.shape)
        random_report = accuracy_report(planted.test_labels, random_scores)
        assert report.f1 > 2 * random_report.f1
        assert report.pr_auc > 2 * random_report.pr_auc

    def test_ensemble_at_least_as_good_as_worst_member(self, planted,
                                                       fitted_ensemble):
        """Median aggregation should not be dominated by its worst model."""
        full = roc_auc(planted.test_labels,
                       fitted_ensemble.score(planted.test))
        singles = [roc_auc(planted.test_labels,
                           fitted_ensemble.score(planted.test, n_models=1))]
        assert full >= min(singles) - 0.05

    def test_detect_at_true_ratio_flags_real_outliers(self, planted,
                                                      fitted_ensemble):
        predictions = fitted_ensemble.detect(planted.test,
                                             ratio=planted.outlier_ratio)
        hits = int(np.sum(predictions * planted.test_labels))
        assert hits >= 0.5 * planted.test_labels.sum()

    def test_embedding_mode_also_detects(self, planted):
        """The paper-literal Eq. 14 target (embedding space) must work too."""
        cae = CAEConfig(input_dim=3, embed_dim=16, window=8, n_layers=1,
                        reconstruct="embedding")
        config = EnsembleConfig(n_models=2, epochs_per_model=2,
                                max_training_windows=300, seed=0)
        ensemble = CAEEnsemble(cae, config).fit(planted.train)
        scores = ensemble.score(planted.test)
        assert roc_auc(planted.test_labels, scores) > 0.7


class TestStreamingConsistency:
    def test_streaming_scores_replicate_batch(self, planted,
                                              fitted_ensemble):
        """Online one-window-at-a-time scoring equals the offline path."""
        w = fitted_ensemble.cae_config.window
        batch = fitted_ensemble.score(planted.test)
        for i in range(w - 1, w + 20):
            window = planted.test[i - w + 1:i + 1]
            np.testing.assert_allclose(
                fitted_ensemble.score_window(window), batch[i], rtol=1e-9)


class TestExperimentCLI:
    def test_list_command(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "list"],
            capture_output=True, text=True, timeout=120)
        assert completed.returncode == 0
        assert "table3" in completed.stdout
        assert "figure17" in completed.stdout

    def test_unknown_experiment_fails(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "tableX"],
            capture_output=True, text=True, timeout=120)
        assert completed.returncode != 0

    def test_out_file_written(self, tmp_path):
        out = tmp_path / "t6.txt"
        completed = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "table6",
             "--budget", "fast", "--quiet", "--out", str(out)],
            capture_output=True, text=True, timeout=600)
        assert completed.returncode == 0, completed.stderr
        assert out.exists()
        assert "DIV_F" in out.read_text()
