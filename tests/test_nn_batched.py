"""Batched (model-stacked) training ops: gradchecks and per-model parity.

Every op in :mod:`repro.nn.batched` must (a) pass numerical gradient
verification and (b) compute, per model slice, exactly what the
per-module path computes — the contract that lets the fused trainer
stand in for the reference loop (``docs/performance.md``).
"""

import numpy as np
import pytest

from repro.core.attention import GlobalAttention
from repro.core.diversity import diversity_driven_loss
from repro.core.layers import GLUConv
from repro.nn import Tensor
from repro.nn.batched import (batched_attention, batched_conv1d, batched_glu,
                              batched_linear_cf, batched_relu_residual,
                              batched_shift_right, fused_training_loss)
from repro.nn.conv import conv1d
from repro.nn.functional import linear
from repro.nn.gradcheck import gradcheck

M, C_IN, C_OUT, N, L, K = 2, 2, 3, 2, 5, 3


def t(rng, *shape):
    return Tensor(rng.standard_normal(shape), requires_grad=True)


class TestGradcheck:
    @pytest.mark.parametrize("padding", ["same", "causal", "valid"])
    def test_conv1d(self, padding):
        rng = np.random.default_rng(0)
        inputs = [t(rng, M, C_IN, N, L), t(rng, M, C_OUT, C_IN, K),
                  t(rng, M, C_OUT)]
        assert gradcheck(lambda x, w, b: batched_conv1d(x, w, b, padding),
                         inputs)

    def test_conv1d_kernel1_valid_fast_path(self):
        rng = np.random.default_rng(1)
        inputs = [t(rng, M, C_IN, N, L), t(rng, M, C_OUT, C_IN, 1),
                  t(rng, M, C_OUT)]
        assert gradcheck(lambda x, w, b: batched_conv1d(x, w, b, "valid"),
                         inputs)

    def test_conv1d_broadcast_model_axis(self):
        # (1, C, N, L) activations against M stacked kernels: the input
        # gradient must un-broadcast back to a leading axis of 1.
        rng = np.random.default_rng(2)
        inputs = [t(rng, 1, C_IN, N, L), t(rng, M, C_OUT, C_IN, K),
                  t(rng, M, C_OUT)]
        assert gradcheck(lambda x, w, b: batched_conv1d(x, w, b, "same"),
                         inputs)

    @pytest.mark.parametrize("padding", ["same", "causal"])
    def test_glu(self, padding):
        rng = np.random.default_rng(3)
        inputs = [t(rng, M, C_IN, N, L), t(rng, M, C_IN, C_IN, K),
                  t(rng, M, C_IN), t(rng, M, C_IN, C_IN, K), t(rng, M, C_IN)]
        assert gradcheck(
            lambda x, wv, bv, wg, bg: batched_glu(x, wv, bv, wg, bg, padding),
            inputs)

    def test_linear_cf(self):
        rng = np.random.default_rng(4)
        inputs = [t(rng, M, C_IN, N, L), t(rng, M, C_OUT, C_IN),
                  t(rng, M, C_OUT)]
        assert gradcheck(batched_linear_cf, inputs)

    def test_attention(self):
        rng = np.random.default_rng(5)
        c, w = 3, 4
        inputs = [t(rng, M, c, N, w), t(rng, M, c, N, w), t(rng, M, c, c),
                  t(rng, M, c)]
        assert gradcheck(batched_attention, inputs)

    @pytest.mark.parametrize("with_mix", [False, True])
    def test_relu_residual(self, with_mix):
        rng = np.random.default_rng(6)
        inputs = [t(rng, M, C_IN, N, L), t(rng, M, C_IN, N, L)]
        if with_mix:
            inputs.append(t(rng, M, C_IN, N, L))
        assert gradcheck(batched_relu_residual, inputs)

    def test_shift_right(self):
        rng = np.random.default_rng(7)
        assert gradcheck(batched_shift_right, [t(rng, M, C_IN, N, L)])

    def test_training_loss(self):
        rng = np.random.default_rng(8)
        pred = t(rng, 1, C_IN, N, L)
        target = rng.standard_normal(pred.shape)
        frozen = rng.standard_normal(pred.shape)
        assert gradcheck(
            lambda p: fused_training_loss(p, target, frozen, 0.3,
                                          saturation=0.7)[0],
            [pred])


class TestShapeValidation:
    def test_conv1d_rejects_3d_input(self):
        with pytest.raises(ValueError, match=r"\(M, C_in, N, L\)"):
            batched_conv1d(Tensor(np.zeros((C_IN, N, L))),
                           Tensor(np.zeros((M, C_OUT, C_IN, K))))

    def test_conv1d_rejects_channel_mismatch(self):
        with pytest.raises(ValueError, match="channels"):
            batched_conv1d(Tensor(np.zeros((M, C_IN + 1, N, L))),
                           Tensor(np.zeros((M, C_OUT, C_IN, K))))

    def test_conv1d_rejects_model_axis_mismatch(self):
        with pytest.raises(ValueError, match="model axes"):
            batched_conv1d(Tensor(np.zeros((3, C_IN, N, L))),
                           Tensor(np.zeros((2, C_OUT, C_IN, K))))

    def test_glu_rejects_weight_shape_mismatch(self):
        with pytest.raises(ValueError, match="value/gate"):
            batched_glu(Tensor(np.zeros((M, C_IN, N, L))),
                        Tensor(np.zeros((M, C_IN, C_IN, K))), None,
                        Tensor(np.zeros((M, C_IN, C_IN, K + 2))), None)

    def test_attention_rejects_state_mismatch(self):
        with pytest.raises(ValueError, match="matching"):
            batched_attention(Tensor(np.zeros((M, C_IN, N, L))),
                              Tensor(np.zeros((M, C_IN, N, L + 1))),
                              Tensor(np.zeros((M, C_IN, C_IN))))


def to_batched(x_ncl):
    """(N, C, L) per-model layout -> (1, C, N, L) channel-major stacked."""
    return np.ascontiguousarray(x_ncl.transpose(1, 0, 2))[None]


def from_batched(data):
    """(1, C, N, L) stacked output -> (N, C, L) per-model layout."""
    return data[0].transpose(1, 0, 2)


class TestPerModelParity:
    """With M = 1 and float64, each batched op must match its per-model
    counterpart (values and gradients) to rounding error."""

    @pytest.mark.parametrize("padding", ["same", "causal", "valid"])
    def test_conv1d(self, padding):
        rng = np.random.default_rng(10)
        x_ncl = rng.standard_normal((N, C_IN, L))
        w = rng.standard_normal((C_OUT, C_IN, K))
        b = rng.standard_normal(C_OUT)

        ref_x = Tensor(x_ncl, requires_grad=True)
        ref_w = Tensor(w, requires_grad=True)
        ref_out = conv1d(ref_x, ref_w, Tensor(b), padding)
        ref_out.sum().backward()

        bat_x = Tensor(to_batched(x_ncl), requires_grad=True)
        bat_w = Tensor(w[None], requires_grad=True)
        bat_out = batched_conv1d(bat_x, bat_w, Tensor(b[None]), padding)
        bat_out.sum().backward()

        np.testing.assert_allclose(from_batched(bat_out.data), ref_out.data,
                                   rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(from_batched(bat_x.grad), ref_x.grad,
                                   rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(bat_w.grad[0], ref_w.grad,
                                   rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("padding", ["same", "causal"])
    def test_glu_matches_gluconv_module(self, padding):
        rng = np.random.default_rng(11)
        module = GLUConv(C_IN, K, padding, np.random.default_rng(1))
        x_ncl = rng.standard_normal((N, C_IN, L))

        ref_out = module(Tensor(x_ncl))
        bat_out = batched_glu(
            Tensor(to_batched(x_ncl)),
            Tensor(module.conv_value.weight.data[None]),
            Tensor(module.conv_value.bias.data[None]),
            Tensor(module.conv_gate.weight.data[None]),
            Tensor(module.conv_gate.bias.data[None]), padding)
        np.testing.assert_allclose(from_batched(bat_out.data), ref_out.data,
                                   rtol=1e-12, atol=1e-12)

    def test_linear_cf_matches_functional_linear(self):
        rng = np.random.default_rng(12)
        x_ncl = rng.standard_normal((N, C_IN, L))
        w = rng.standard_normal((C_OUT, C_IN))
        b = rng.standard_normal(C_OUT)

        # linear operates on trailing feature axes: (N, L, C_in).
        ref_out = linear(Tensor(x_ncl.transpose(0, 2, 1)), Tensor(w),
                         Tensor(b))
        bat_out = batched_linear_cf(Tensor(to_batched(x_ncl)),
                                    Tensor(w[None]), Tensor(b[None]))
        np.testing.assert_allclose(from_batched(bat_out.data),
                                   ref_out.data.transpose(0, 2, 1),
                                   rtol=1e-12, atol=1e-12)

    def test_attention_matches_global_attention_module(self):
        rng = np.random.default_rng(13)
        c, w = 4, 6
        module = GlobalAttention(c, np.random.default_rng(2))
        d_ncl = rng.standard_normal((N, c, w))
        e_ncl = rng.standard_normal((N, c, w))

        ref_out, _ = module(Tensor(d_ncl), Tensor(e_ncl))
        bat_out = batched_attention(Tensor(to_batched(d_ncl)),
                                    Tensor(to_batched(e_ncl)),
                                    Tensor(module.summary.weight.data[None]),
                                    Tensor(module.summary.bias.data[None]))
        np.testing.assert_allclose(from_batched(bat_out.data), ref_out.data,
                                   rtol=1e-12, atol=1e-12)

    def test_training_loss_matches_diversity_driven_loss(self):
        rng = np.random.default_rng(14)
        shape = (N, L, C_IN)
        pred = rng.standard_normal(shape)
        target = rng.standard_normal(shape)
        frozen = rng.standard_normal(shape)

        ref_pred = Tensor(pred, requires_grad=True)
        ref_loss = diversity_driven_loss(ref_pred, Tensor(target), frozen,
                                         0.4, saturation=0.9)
        ref_loss.backward()

        bat_pred = Tensor(pred.copy(), requires_grad=True)
        loss, j_value, k_value = fused_training_loss(bat_pred, target, frozen,
                                                     0.4, saturation=0.9)
        loss.backward()

        np.testing.assert_allclose(float(loss.data), float(ref_loss.data),
                                   rtol=1e-12)
        np.testing.assert_allclose(j_value, np.mean((pred - target) ** 2),
                                   rtol=1e-12)
        np.testing.assert_allclose(k_value, np.mean((pred - frozen) ** 2),
                                   rtol=1e-12)
        np.testing.assert_allclose(bat_pred.grad, ref_pred.grad,
                                   rtol=1e-12, atol=1e-14)

    def test_training_loss_without_diversity(self):
        rng = np.random.default_rng(15)
        pred = Tensor(rng.standard_normal((N, L)), requires_grad=True)
        target = rng.standard_normal((N, L))
        loss, j_value, k_value = fused_training_loss(pred, target)
        assert k_value == 0.0
        np.testing.assert_allclose(float(loss.data), j_value, rtol=1e-12)


class TestDtypePolicy:
    def test_float32_preserved_end_to_end(self):
        rng = np.random.default_rng(16)
        x = Tensor(rng.standard_normal((M, C_IN, N, L)).astype(np.float32),
                   requires_grad=True)
        w = Tensor(rng.standard_normal((M, C_OUT, C_IN, K))
                   .astype(np.float32), requires_grad=True)
        out = batched_conv1d(x, w, padding="same")
        assert out.dtype == np.float32
        out.sum().backward()
        assert x.grad.dtype == np.float32
        assert w.grad.dtype == np.float32

    def test_float32_glu_matches_float64_loosely(self):
        rng = np.random.default_rng(17)
        x = rng.standard_normal((M, C_IN, N, L))
        wv = rng.standard_normal((M, C_IN, C_IN, K))
        wg = rng.standard_normal((M, C_IN, C_IN, K))
        out64 = batched_glu(Tensor(x), Tensor(wv), None, Tensor(wg), None)
        out32 = batched_glu(Tensor(x.astype(np.float32)),
                            Tensor(wv.astype(np.float32)), None,
                            Tensor(wg.astype(np.float32)), None)
        np.testing.assert_allclose(out32.data, out64.data, rtol=1e-4,
                                   atol=1e-5)
