"""Drift-triggered warm-started refresh — policy units and the end-to-end
acceptance scenario: injected drift → DriftEvent → warm-started refresh →
post-refresh scores beat the stale ensemble on the shifted regime."""

import numpy as np
import pytest

from repro.streaming import (DDMDrift, EnsembleRefresher, StreamingDetector)
from tests.conftest import make_stream_ensemble, sine_regime


class TestRefresherPolicy:
    def test_history_and_cooldown_gates(self):
        refresher = EnsembleRefresher(min_history=100, cooldown=50)
        assert not refresher.ready(history_length=99, index=10)
        assert refresher.ready(history_length=100, index=10)
        refresher.last_refresh_index = 10
        assert not refresher.ready(history_length=200, index=59)
        assert refresher.ready(history_length=200, index=60)

    def test_refresh_warm_starts_and_preserves_the_old_ensemble(self):
        ensemble = make_stream_ensemble(epochs=1)
        old_states = [{name: value.data.copy()
                       for name, value in model.named_parameters()}
                      for model in ensemble.models]
        refresher = EnsembleRefresher(epochs_per_model=1,
                                      warm_start_fraction=0.5)
        history = sine_regime(120, start=360, shift=2.0)
        replacement, report = refresher.refresh(ensemble, history, index=42)
        assert replacement is not ensemble
        assert replacement.n_models == ensemble.n_models
        assert report.index == 42
        assert report.history_length == 120
        assert report.warm_started
        assert 0.3 < report.copied_fraction < 0.7
        # The serving ensemble was never touched.
        for model, saved in zip(ensemble.models, old_states):
            for name, value in model.named_parameters():
                np.testing.assert_array_equal(value.data, saved[name])
        assert refresher.n_refreshes == 1

    def test_refresh_rejects_short_history(self):
        ensemble = make_stream_ensemble(epochs=1)
        refresher = EnsembleRefresher()
        with pytest.raises(ValueError):
            refresher.refresh(ensemble, sine_regime(4), index=0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EnsembleRefresher(min_history=0)
        with pytest.raises(ValueError):
            EnsembleRefresher(cooldown=-1)
        with pytest.raises(ValueError):
            EnsembleRefresher(warm_start_fraction=1.5)
        with pytest.raises(ValueError):
            EnsembleRefresher(epochs_per_model=0)


class TestDriftRefreshIntegration:
    def test_drift_triggers_refresh_that_beats_the_stale_ensemble(self):
        """The acceptance scenario from the issue, end to end."""
        stale = make_stream_ensemble(epochs=2)
        detector = StreamingDetector(
            stale,
            drift_detector=DDMDrift(min_samples=20),
            refresher=EnsembleRefresher(min_history=80, epochs_per_model=2),
            history=256)
        detector.warm_up(sine_regime(7, start=353))

        # A stationary stretch, then a persistent level shift.
        detector.update_batch(sine_regime(60, start=360))
        shifted = sine_regime(200, start=420, shift=3.0)
        for start in range(0, 200, 20):
            detector.update_batch(shifted[start:start + 20])

        drifts = [e for e in detector.drift_events if e.kind == "drift"]
        assert len(drifts) >= 1, "injected shift never flagged as drift"
        assert drifts[0].index >= 60, "drift flagged before the shift"
        assert detector.n_refreshes >= 1, "drift never triggered a refresh"
        report = detector.refresh_reports[0]
        assert report.warm_started, "refresh was not warm-started"
        assert report.index == drifts[0].index
        assert detector.ensemble is not stale

        # The refreshed ensemble must model the shifted regime better than
        # the stale one it replaced.
        holdout = sine_regime(120, start=620, shift=3.0)
        stale_error = float(np.mean(stale.score(holdout)))
        fresh_error = float(np.mean(detector.ensemble.score(holdout)))
        assert fresh_error < stale_error, (
            f"refresh did not improve on the shifted regime: "
            f"stale {stale_error:.3f} vs refreshed {fresh_error:.3f}")

    def test_refresh_resets_calibration_and_drift_state(self):
        from repro.streaming import BurnInMAD
        stale = make_stream_ensemble(epochs=1)
        detector = StreamingDetector(
            stale,
            calibrator=BurnInMAD(30, 8.0),
            drift_detector=DDMDrift(min_samples=20),
            refresher=EnsembleRefresher(min_history=80, epochs_per_model=1),
            history=256)
        detector.warm_up(sine_regime(7, start=353))
        detector.update_batch(sine_regime(60, start=360))
        assert detector.threshold is not None
        shifted = sine_regime(100, start=420, shift=3.0)
        refreshed_at = None
        for start in range(0, 100, 10):
            updates = detector.update_batch(shifted[start:start + 10])
            if refreshed_at is None and any(u.refreshed for u in updates):
                refreshed_at = next(u.index for u in updates if u.refreshed)
                # The old threshold was calibrated on the stale ensemble's
                # score scale — the refresh restarts burn-in, and the
                # stale scores of the batch remainder stay excluded.
                assert detector.threshold is None
        assert refreshed_at is not None
        assert detector.n_refreshes >= 1
        # Enough post-refresh traffic to recalibrate on the refreshed
        # ensemble's scores.
        detector.update_batch(sine_regime(40, start=520, shift=3.0))
        assert detector.threshold is not None

    def test_cooldown_limits_refresh_rate(self):
        stale = make_stream_ensemble(epochs=1)
        detector = StreamingDetector(
            stale,
            drift_detector=DDMDrift(min_samples=10),
            refresher=EnsembleRefresher(min_history=80, cooldown=10 ** 6,
                                        epochs_per_model=1),
            history=256)
        detector.warm_up(sine_regime(7, start=353))
        detector.update_batch(sine_regime(60, start=360))
        # Repeated regime changes, but the cooldown allows one refresh.
        detector.update_batch(sine_regime(100, start=420, shift=3.0))
        detector.update_batch(sine_regime(100, start=520, shift=-4.0))
        assert detector.n_refreshes <= 1