"""Window construction and the Figure 10 score-mapping protocol."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.windows import (observation_index_of_window_entry,
                                    pad_series_for_full_scores,
                                    sliding_windows, window_count,
                                    window_scores_to_observation_scores)


class TestSlidingWindows:
    def test_basic_shape(self):
        series = np.arange(20.0).reshape(10, 2)
        windows = sliding_windows(series, 4)
        assert windows.shape == (7, 4, 2)

    def test_stride_one_overlap(self):
        series = np.arange(10.0).reshape(10, 1)
        windows = sliding_windows(series, 3)
        np.testing.assert_array_equal(windows[0, :, 0], [0, 1, 2])
        np.testing.assert_array_equal(windows[1, :, 0], [1, 2, 3])

    def test_custom_stride(self):
        series = np.arange(10.0).reshape(10, 1)
        windows = sliding_windows(series, 3, stride=2)
        assert windows.shape == (4, 3, 1)
        np.testing.assert_array_equal(windows[1, :, 0], [2, 3, 4])

    def test_window_equals_length(self):
        series = np.zeros((5, 2))
        assert sliding_windows(series, 5).shape == (1, 5, 2)

    def test_views_are_read_only(self):
        windows = sliding_windows(np.zeros((6, 1)), 3)
        with pytest.raises((ValueError, RuntimeError)):
            windows[0, 0, 0] = 1.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            sliding_windows(np.zeros(5), 2)             # 1-D
        with pytest.raises(ValueError):
            sliding_windows(np.zeros((5, 1)), 0)        # bad window
        with pytest.raises(ValueError):
            sliding_windows(np.zeros((5, 1)), 6)        # too long
        with pytest.raises(ValueError):
            sliding_windows(np.zeros((5, 1)), 2, stride=0)

    @given(length=st.integers(2, 60), window=st.integers(1, 60),
           stride=st.integers(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_count_matches_helper(self, length, window, stride):
        if window > length:
            return
        series = np.zeros((length, 2))
        windows = sliding_windows(series, window, stride)
        assert windows.shape[0] == window_count(length, window, stride)

    @given(length=st.integers(4, 40), window=st.integers(2, 10))
    @settings(max_examples=40, deadline=None)
    def test_every_window_is_a_contiguous_slice(self, length, window):
        if window > length:
            return
        series = np.arange(length, dtype=float).reshape(-1, 1)
        windows = sliding_windows(series, window)
        for i in range(windows.shape[0]):
            np.testing.assert_array_equal(
                windows[i, :, 0], np.arange(i, i + window, dtype=float))


class TestScoreMapping:
    def test_first_window_contributes_all(self):
        scores = np.array([[1.0, 2.0, 3.0],
                           [9.0, 9.0, 4.0],
                           [9.0, 9.0, 5.0]])
        out = window_scores_to_observation_scores(scores, 3)
        np.testing.assert_array_equal(out, [1, 2, 3, 4, 5])

    def test_single_window(self):
        out = window_scores_to_observation_scores(np.array([[7.0, 8.0]]), 2)
        np.testing.assert_array_equal(out, [7.0, 8.0])

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            window_scores_to_observation_scores(np.zeros((3, 4)), 5)

    @given(n=st.integers(1, 50), window=st.integers(2, 12))
    @settings(max_examples=60, deadline=None)
    def test_output_length_invariant(self, n, window):
        scores = np.random.default_rng(0).random((n, window))
        out = window_scores_to_observation_scores(scores, window)
        assert out.shape == (n + window - 1,)

    @given(n=st.integers(2, 30), window=st.integers(2, 8))
    @settings(max_examples=40, deadline=None)
    def test_tail_scores_come_from_last_column(self, n, window):
        scores = np.random.default_rng(1).random((n, window))
        out = window_scores_to_observation_scores(scores, window)
        np.testing.assert_array_equal(out[window:], scores[1:, -1])

    def test_index_helper(self):
        assert observation_index_of_window_entry(3, 2) == 5
        assert observation_index_of_window_entry(3, 2, stride=2) == 8


class TestPadding:
    def test_pad_repeats_first_row(self):
        series = np.array([[1.0, 2.0], [3.0, 4.0]])
        padded = pad_series_for_full_scores(series, 3)
        assert padded.shape == (4, 2)
        np.testing.assert_array_equal(padded[0], [1.0, 2.0])
        np.testing.assert_array_equal(padded[1], [1.0, 2.0])

    def test_pad_makes_full_coverage(self):
        series = np.random.default_rng(0).random((10, 2))
        padded = pad_series_for_full_scores(series, 4)
        assert window_count(padded.shape[0], 4) == 10

    def test_pad_rejects_1d(self):
        with pytest.raises(ValueError):
            pad_series_for_full_scores(np.zeros(5), 3)
