"""Classic (non-neural) baselines: ISF, LOF, OCSVM, MAS."""

import numpy as np
import pytest

from repro.baselines import (IsolationForest, LocalOutlierFactor,
                             MovingAverageSmoothing, OneClassSVM,
                             average_path_length, rbf_kernel)


def gaussian_with_outliers(n=400, dims=3, n_outliers=12, seed=0):
    """Dense Gaussian cluster plus a few far-away points."""
    rng = np.random.default_rng(seed)
    inliers = rng.normal(0, 1, size=(n, dims))
    outliers = rng.normal(0, 1, size=(n_outliers, dims)) + 8.0
    data = np.vstack([inliers, outliers])
    labels = np.concatenate([np.zeros(n, dtype=int),
                             np.ones(n_outliers, dtype=int)])
    return inliers, data, labels


def separation(scores, labels):
    return scores[labels == 1].mean() - scores[labels == 0].mean()


class TestAveragePathLength:
    def test_edge_cases(self):
        assert average_path_length(0) == 0.0
        assert average_path_length(1) == 0.0
        assert average_path_length(2) == 1.0

    def test_monotone_in_n(self):
        values = [average_path_length(n) for n in (2, 10, 100, 1000)]
        assert values == sorted(values)


class TestIsolationForest:
    def test_detects_planted_outliers(self):
        train, test, labels = gaussian_with_outliers()
        scores = IsolationForest(n_estimators=50).fit(train).score(test)
        assert separation(scores, labels) > 0.1

    def test_scores_in_unit_interval(self):
        train, test, _ = gaussian_with_outliers()
        scores = IsolationForest(n_estimators=20).fit(train).score(test)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_deterministic(self):
        train, test, _ = gaussian_with_outliers()
        a = IsolationForest(seed=3).fit(train).score(test)
        b = IsolationForest(seed=3).fit(train).score(test)
        np.testing.assert_array_equal(a, b)

    def test_score_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            IsolationForest().score(np.zeros((5, 2)))

    def test_constant_data_no_crash(self):
        data = np.ones((50, 2))
        scores = IsolationForest(n_estimators=5).fit(data).score(data)
        assert np.all(np.isfinite(scores))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            IsolationForest(n_estimators=0)
        with pytest.raises(ValueError):
            IsolationForest(max_samples=1)


class TestLOF:
    def test_detects_planted_outliers(self):
        train, test, labels = gaussian_with_outliers()
        scores = LocalOutlierFactor(n_neighbors=10).fit(train).score(test)
        assert separation(scores, labels) > 0.5

    def test_inlier_lof_near_one(self):
        train, test, labels = gaussian_with_outliers()
        scores = LocalOutlierFactor(n_neighbors=15).fit(train).score(test)
        inlier_scores = scores[labels == 0]
        assert 0.8 < np.median(inlier_scores) < 1.5

    def test_training_subsample_cap(self):
        train, test, _ = gaussian_with_outliers(n=300)
        detector = LocalOutlierFactor(max_training_points=100)
        detector.fit(train)
        assert detector._train.shape[0] == 100

    def test_needs_enough_points(self):
        with pytest.raises(ValueError):
            LocalOutlierFactor(n_neighbors=20).fit(np.zeros((10, 2)))

    def test_score_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LocalOutlierFactor().score(np.zeros((5, 2)))


class TestOCSVM:
    def test_rbf_kernel_properties(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(5, 3))
        k = rbf_kernel(a, a, gamma=0.5)
        np.testing.assert_allclose(np.diag(k), 1.0)
        np.testing.assert_allclose(k, k.T)
        assert np.all((k > 0) & (k <= 1.0 + 1e-12))

    def test_detects_planted_outliers(self):
        train, test, labels = gaussian_with_outliers()
        scores = OneClassSVM(nu=0.1).fit(train).score(test)
        assert separation(scores, labels) > 0.1

    def test_dual_constraints_hold(self):
        train, _, _ = gaussian_with_outliers(n=150)
        detector = OneClassSVM(nu=0.5, max_training_points=150).fit(train)
        alpha = detector._alpha
        upper = 1.0 / (0.5 * len(alpha))
        assert np.all(alpha >= -1e-10)
        assert np.all(alpha <= upper + 1e-10)
        assert np.sum(alpha) == pytest.approx(1.0)

    def test_nu_bounds_training_outlier_fraction(self):
        """ν upper-bounds the fraction of training points outside the
        region (the ν-property, approximately for a converged solver)."""
        train, _, _ = gaussian_with_outliers(n=300, n_outliers=0)
        detector = OneClassSVM(nu=0.2, max_iter=5000).fit(train)
        decisions = detector.decision_function(train)
        outside = float((decisions < -1e-8).mean())
        assert outside <= 0.3

    def test_invalid_nu(self):
        with pytest.raises(ValueError):
            OneClassSVM(nu=0.0)
        with pytest.raises(ValueError):
            OneClassSVM(nu=1.5)

    def test_score_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            OneClassSVM().score(np.zeros((5, 2)))


class TestMAS:
    def test_spike_scores_higher_than_smooth_region(self):
        t = np.arange(300.0)
        series = np.sin(t / 10).reshape(-1, 1)
        series[150, 0] += 5.0
        detector = MovingAverageSmoothing(window=10).fit(series)
        scores = detector.score(series)
        assert scores[150] > 10 * np.median(scores)

    def test_constant_series_scores_zero(self):
        series = np.ones((100, 2))
        scores = MovingAverageSmoothing(window=8).fit(series).score(series)
        np.testing.assert_allclose(scores, 0.0, atol=1e-20)

    def test_score_length(self):
        series = np.random.default_rng(0).random((123, 4))
        scores = MovingAverageSmoothing(window=16).fit(series).score(series)
        assert scores.shape == (123,)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            MovingAverageSmoothing(window=1)
