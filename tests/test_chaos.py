"""Chaos battery: seeded fault schedules drive every recovery path.

The methodology extends ``test_failure_injection``'s process-fault
tests from hand-placed ``kill -9`` calls to *scheduled* faults: a
:class:`repro.faults.FaultPlan` arms crashes/errors at named injection
points and exact hit counts, so the same seed reproduces the same
failure at the same instruction, in whichever process reaches it.  The
recovery side — :mod:`repro.runtime.supervisor` policies, shard
respawn, broker failover, in-broker build retry, coordinator
retry/breaker, serving deadlines — is then asserted deterministically:
every wait is event-gated or bounded by a virtual clock, and the
headline test proves post-recovery scores **bit-identical** to a
fault-free run resumed from the same checkpoints.

``REPRO_FAULT_SEED`` (set by the CI chaos lane) seeds the plan; any
failure message carries the seed + plan so the run reproduces exactly.
"""

import asyncio
import multiprocessing as mp
import os
import threading
import time

import numpy as np
import pytest

from repro import faults, obs
from repro.core import load_sharded_fleet
from repro.faults import FaultInjected, FaultPlan, use_plan
from repro.runtime import (BreakerOpen, BuildBroker, CircuitBreaker,
                           RestartPolicy, RetryPolicy, ShardCrashed,
                           attach_pack, list_segments, publish_pack,
                           shard_for, unlink_pack)
from repro.runtime import shm as shm_mod
from repro.serving import DetectionServer, ServingClient, ServingTimeout
from repro.serving.protocol import (read_frame, render_update,
                                    write_frame)
from repro.streaming import RefreshCoordinator, sharded_fleet
from repro.streaming.refresh import RefreshReport
from tests.conftest import fabricate_ensemble, sine_regime
from tests.test_runtime_processes import (GATE_TIMEOUT,
                                          ProcessGatedRefresher,
                                          wait_started)

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "1337"))


# ----------------------------------------------------------------------
# Stubs
# ----------------------------------------------------------------------
class CountingRefresher:
    """In-process refresher that fails its first ``fail_first`` builds."""

    def __init__(self, fail_first=0, replacement=None):
        self.fail_first = int(fail_first)
        self.replacement = replacement
        self.calls = 0
        self.n_refreshes = 0

    def ready(self, history_length, index):
        return True

    def build(self, ensemble, history, index, generation=None,
              trigger_index=None, mode="inline", cancel=None):
        self.calls += 1
        if self.calls <= self.fail_first:
            raise RuntimeError(f"transient build failure {self.calls}")
        report = RefreshReport(index=int(index),
                               history_length=int(len(history)),
                               train_seconds=0.0, warm_start_fraction=0.0,
                               copied_fraction=0.0,
                               trigger_index=trigger_index, mode=mode)
        return self.replacement, report

    def commit(self, report):
        self.n_refreshes += 1


class FakeUpdate:
    """Duck-typed StreamUpdate for serving tests over a stub fleet."""

    def __init__(self, index, score):
        self.index = int(index)
        self.score = float(score)
        self.threshold = 1.0
        self.alert = False
        self.drift = None
        self.refreshed = False


class BlockingFleet:
    """Stub fleet whose first flush blocks until :attr:`release` is set
    — the deterministic stand-in for a shard wedged under respawn."""

    def __init__(self):
        self.release = threading.Event()
        self.block_next = True
        self.count = 0

    def update_coalesced(self, batches):
        if self.block_next:
            self.block_next = False
            assert self.release.wait(GATE_TIMEOUT), "never released"
        out = {}
        for name, rows in batches.items():
            n = int(np.asarray(rows).shape[0])
            out[name] = [FakeUpdate(self.count + i, float(i))
                         for i in range(n)]
            self.count += n
        return out

    update_many = update_coalesced

    def warm_up(self, name, series):
        pass

    def telemetry(self):
        return {}


# ----------------------------------------------------------------------
# The fault-injection framework itself
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_at_fires_at_exact_hit_only(self):
        plan = FaultPlan(shared=False).at("demo.hit", hit=2)
        with use_plan(plan):
            assert faults.point("demo.hit") is None          # hit 1
            with pytest.raises(FaultInjected) as excinfo:
                faults.point("demo.hit")                     # hit 2
            assert excinfo.value.point_name == "demo.hit"
            assert excinfo.value.hit == 2
            assert faults.point("demo.hit") is None          # hit 3
        assert not faults.enabled
        assert faults.point("demo.hit") is None     # disabled: free pass

    def test_schedule_is_seed_deterministic(self):
        points = ["p", "q", "r"]
        a = FaultPlan(seed=FAULT_SEED, shared=False).schedule(
            points, n_faults=5, actions=("error", "crash"))
        b = FaultPlan(seed=FAULT_SEED, shared=False).schedule(
            points, n_faults=5, actions=("error", "crash"))
        assert a.describe() == b.describe()
        assert len(a.describe()["arms"]) == 5
        assert all(arm["point"] in points
                   for arm in a.describe()["arms"])

    def test_site_interpreted_action_is_returned(self):
        plan = FaultPlan(shared=False).at("demo.torn", action="torn")
        with use_plan(plan):
            assert faults.point("demo.torn") == "torn"
            assert plan.fired[0]["action"] == "torn"
            assert plan.hits("demo.torn") == 1

    def test_delay_action_returns_none_after_sleeping(self):
        plan = FaultPlan(shared=False).at("demo.slow", action="delay",
                                          delay=0.0)
        with use_plan(plan):
            assert faults.point("demo.slow") is None

    def test_use_plan_nesting_restores_previous_plan(self):
        outer = FaultPlan(shared=False).at("demo.outer", hit=1)
        inner = FaultPlan(shared=False).at("demo.inner", hit=1)
        with use_plan(outer):
            with use_plan(inner):
                assert faults.active_plan() is inner
            assert faults.active_plan() is outer
            assert faults.enabled
        assert faults.active_plan() is None
        assert not faults.enabled

    def test_invalid_arm_parameters_rejected(self):
        with pytest.raises(ValueError, match="hit"):
            FaultPlan(shared=False).at("p", hit=0)
        with pytest.raises(ValueError, match="times"):
            FaultPlan(shared=False).at("p", times=0)

    def test_fork_shared_budget_fires_once_tree_wide(self):
        """A child consumes the arm's budget; the parent's own first
        visit must then pass clean — this is what stops a respawned
        process (hit counters reset) from re-firing in a crash loop."""
        ctx = mp.get_context("fork")
        plan = FaultPlan(shared=True).at("demo.shared", hit=1, times=1)
        outcome = ctx.Queue()

        def child():
            outcome.put(plan.visit("demo.shared"))

        process = ctx.Process(target=child)
        process.start()
        process.join(GATE_TIMEOUT)
        assert process.exitcode == 0
        assert outcome.get(timeout=GATE_TIMEOUT) == "error"
        assert plan.visit("demo.shared") is None    # budget spent

    def test_local_budget_plan_fires_per_plan_not_per_tree(self):
        plan = FaultPlan(shared=False).at("demo.local", hit=1, times=2)
        assert plan.visit("demo.local") == "error"
        # Same hit in a "new process" (simulated by a second plan built
        # the same way) has its own budget.
        again = FaultPlan(shared=False).at("demo.local", hit=1, times=2)
        assert again.visit("demo.local") == "error"


# ----------------------------------------------------------------------
# Supervision policies (virtual clocks; the doctests cover the basics)
# ----------------------------------------------------------------------
class TestSupervisorPolicies:
    def test_retry_policy_exponential_without_jitter(self):
        policy = RetryPolicy(max_retries=5, base_delay=0.1, max_delay=0.5,
                             jitter=False)
        assert [policy.delay_for(a) for a in range(5)] == \
            [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_retry_policy_seeded_jitter_deterministic(self):
        a = RetryPolicy(base_delay=1.0, seed=FAULT_SEED)
        b = RetryPolicy(base_delay=1.0, seed=FAULT_SEED)
        draws_a = [a.delay_for(k) for k in range(8)]
        draws_b = [b.delay_for(k) for k in range(8)]
        assert draws_a == draws_b
        assert all(0.0 <= d <= 2.0 for d in draws_a)

    def test_breaker_failed_probe_reopens_and_recools(self):
        clock = [0.0]
        transitions = []
        breaker = CircuitBreaker(failure_threshold=2, cooldown=10.0,
                                 clock=lambda: clock[0],
                                 on_transition=transitions.append)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "open"
        clock[0] = 11.0
        assert breaker.allow()                  # claims the probe
        assert breaker.state == "half_open"
        breaker.record_failure()                # probe failed
        assert breaker.state == "open"
        clock[0] = 20.0                         # cooldown restarted at 11
        assert not breaker.allow()
        clock[0] = 21.5
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert transitions == ["open", "half_open", "open", "half_open",
                               "closed"]

    def test_restart_policy_recent_and_clone_are_independent(self):
        clock = [0.0]
        policy = RestartPolicy(max_restarts=2, window=60.0,
                               clock=lambda: clock[0])
        assert policy.allow() and policy.allow()
        assert policy.recent() == 2
        sibling = policy.clone()
        assert sibling.recent() == 0            # fresh budget
        assert sibling.allow()
        clock[0] = 120.0
        assert policy.recent() == 0             # window slid past


# ----------------------------------------------------------------------
# Coordinator retry + circuit breaker (in-process, thread builds only)
# ----------------------------------------------------------------------
class TestCoordinatorRetry:
    def run_build(self, coordinator, refresher, ensemble=None):
        ensemble = fabricate_ensemble() if ensemble is None else ensemble
        client = coordinator.client(refresher)
        handle = client.submit(ensemble, sine_regime(32, seed=1), 10)
        assert client.join(GATE_TIMEOUT)
        assert client.take() is handle
        return handle

    def test_transient_failure_retried_to_success(self):
        registry = obs.MetricsRegistry()
        obs.set_default_registry(registry)
        coordinator = RefreshCoordinator(
            retry=RetryPolicy(max_retries=2, base_delay=0.0, jitter=False))
        try:
            refresher = CountingRefresher(
                fail_first=2, replacement=fabricate_ensemble(seed=5))
            handle = self.run_build(coordinator, refresher)
            assert handle.ready
            assert refresher.calls == 3         # 1 attempt + 2 retries
            stats = coordinator.stats()
            assert stats.n_retried == 2
            assert stats.n_failed == 0
            assert registry.counter(
                "repro_coordinator_retried_total").value == 2
        finally:
            coordinator.shutdown()

    def test_retry_budget_exhausted_fails_with_original_error(self):
        coordinator = RefreshCoordinator(
            retry=RetryPolicy(max_retries=1, base_delay=0.0, jitter=False))
        try:
            refresher = CountingRefresher(fail_first=10)
            handle = self.run_build(coordinator, refresher)
            assert handle.status == "failed"
            assert "transient build failure" in str(handle.error)
            assert refresher.calls == 2         # 1 attempt + 1 retry
            assert coordinator.stats().n_retried == 1
        finally:
            coordinator.shutdown()

    def test_no_retry_policy_keeps_fail_fast_behaviour(self):
        coordinator = RefreshCoordinator()
        try:
            refresher = CountingRefresher(fail_first=1)
            handle = self.run_build(coordinator, refresher)
            assert handle.status == "failed"
            assert refresher.calls == 1
            assert coordinator.stats().n_retried == 0
        finally:
            coordinator.shutdown()

    def test_injected_build_fault_is_retried(self):
        """The ``coordinator.build`` hook composes with the retry loop:
        a scheduled one-shot fault costs one retry, not the build."""
        plan = FaultPlan(shared=False).at("coordinator.build", hit=1)
        coordinator = RefreshCoordinator(
            retry=RetryPolicy(max_retries=1, base_delay=0.0, jitter=False))
        try:
            with use_plan(plan):
                refresher = CountingRefresher(
                    replacement=fabricate_ensemble(seed=5))
                handle = self.run_build(coordinator, refresher)
            assert handle.ready
            assert refresher.calls == 1         # fault fired before build
            assert coordinator.stats().n_retried == 1
        finally:
            coordinator.shutdown()

    def test_n_retried_survives_state_round_trip(self):
        coordinator = RefreshCoordinator(
            retry=RetryPolicy(max_retries=1, base_delay=0.0, jitter=False))
        try:
            self.run_build(coordinator, CountingRefresher(
                fail_first=1, replacement=fabricate_ensemble(seed=5)))
            state = coordinator.state_dict()
        finally:
            coordinator.shutdown()
        resumed = RefreshCoordinator.from_state(state)
        try:
            assert resumed.stats().n_retried == 1
        finally:
            resumed.shutdown()


class TestCoordinatorBreaker:
    def make(self, clock, threshold=2, cooldown=30.0):
        registry = obs.MetricsRegistry()
        obs.set_default_registry(registry)
        coordinator = RefreshCoordinator(
            breaker_factory=lambda: CircuitBreaker(
                failure_threshold=threshold, cooldown=cooldown,
                clock=lambda: clock[0]))
        return coordinator, registry

    def test_breaker_opens_and_rejects_without_building(self):
        clock = [0.0]
        coordinator, registry = self.make(clock)
        ensemble = fabricate_ensemble()
        runner = TestCoordinatorRetry()
        try:
            for _ in range(2):
                handle = runner.run_build(
                    coordinator, CountingRefresher(fail_first=1), ensemble)
                assert handle.status == "failed"
            rejected = CountingRefresher(
                replacement=fabricate_ensemble(seed=5))
            handle = runner.run_build(coordinator, rejected, ensemble)
            assert handle.status == "failed"
            assert isinstance(handle.error, BreakerOpen)
            assert rejected.calls == 0          # refused before building
            assert registry.gauge("repro_breaker_state").value == 1  # open
            assert registry.counter(
                "repro_coordinator_breaker_rejected_total").value == 1
        finally:
            coordinator.shutdown()

    def test_half_open_probe_closes_breaker_on_success(self):
        clock = [0.0]
        coordinator, registry = self.make(clock)
        ensemble = fabricate_ensemble()
        runner = TestCoordinatorRetry()
        try:
            for _ in range(2):
                runner.run_build(coordinator,
                                 CountingRefresher(fail_first=1), ensemble)
            clock[0] = 31.0                     # cooldown elapsed: probe
            probe = CountingRefresher(replacement=fabricate_ensemble(seed=5))
            handle = runner.run_build(coordinator, probe, ensemble)
            assert handle.ready and probe.calls == 1
            assert registry.gauge("repro_breaker_state").value == 0
            # Fully closed again: the next build is admitted normally.
            again = CountingRefresher(replacement=fabricate_ensemble(seed=6))
            assert runner.run_build(coordinator, again, ensemble).ready
        finally:
            coordinator.shutdown()

    def test_breakers_are_per_ensemble(self):
        clock = [0.0]
        coordinator, _ = self.make(clock)
        runner = TestCoordinatorRetry()
        sick = fabricate_ensemble(seed=1)
        healthy = fabricate_ensemble(seed=2)
        try:
            for _ in range(2):
                runner.run_build(coordinator,
                                 CountingRefresher(fail_first=1), sick)
            blocked = runner.run_build(
                coordinator, CountingRefresher(
                    replacement=fabricate_ensemble(seed=5)), sick)
            assert isinstance(blocked.error, BreakerOpen)
            fine = runner.run_build(
                coordinator, CountingRefresher(
                    replacement=fabricate_ensemble(seed=6)), healthy)
            assert fine.ready                   # other ensemble unaffected
        finally:
            coordinator.shutdown()


# ----------------------------------------------------------------------
# Shard supervision: respawn, checkpoint recovery, quarantine
# ----------------------------------------------------------------------
def stream_on_shard(shard, n_shards, tag="s"):
    index = 0
    while True:
        name = f"{tag}{index}"
        if shard_for(name, n_shards) == shard:
            return name
        index += 1


class TestShardSupervision:
    def test_unsupervised_crash_still_raises(self, shm_namespace,
                                             stream_ensemble):
        fleet = sharded_fleet(stream_ensemble, n_shards=2, history=64)
        try:
            name = stream_on_shard(0, 2)
            fleet.update_batch(name, sine_regime(8, start=360))
            os.kill(fleet.worker_pids()[0], 9)
            with pytest.raises(ShardCrashed):
                fleet.update_batch(name, sine_regime(8, start=368))
        finally:
            fleet.shutdown()

    def test_respawn_recovers_from_last_checkpoint(self, shm_namespace,
                                                   stream_ensemble,
                                                   tmp_path):
        """Crash-consistent recovery: updates since the checkpoint are
        lost, the retried request applies on the restored state, and the
        recovery is visible in health()/telemetry()."""
        registry = obs.MetricsRegistry()
        obs.set_default_registry(registry)
        fleet = sharded_fleet(stream_ensemble, n_shards=2, history=64,
                              restart=RestartPolicy(max_restarts=2,
                                                    window=300.0))
        try:
            name = stream_on_shard(0, 2)
            fleet.update_batch(name, sine_regime(10, start=360))
            fleet.checkpoint(str(tmp_path / "ckpt"))
            fleet.update_batch(name, sine_regime(5, start=370))  # lost
            victim = fleet.worker_pids()[0]
            os.kill(victim, 9)
            updates = fleet.update_batch(name, sine_regime(3, start=375))
            assert len(updates) == 3            # retried transparently
            assert fleet.worker_pids()[0] != victim
            stat = next(s for s in fleet.stats() if s.name == name)
            assert stat.n_observations == 13    # 10 checkpointed + 3
            health = fleet.health()
            assert health["state"] == "degraded"
            assert health["restarts"] == {0: 1}
            assert health["recent_restarts"] == 1
            assert health["shards"][0]["status"] == "up"
            assert fleet.telemetry()["supervision"]["restarts"] == {0: 1}
            assert registry.counter("repro_restarts_total",
                                    component="shard").value == 1
        finally:
            fleet.shutdown()

    def test_respawn_without_checkpoint_rebuilds_from_factory(
            self, shm_namespace, stream_ensemble):
        fleet = sharded_fleet(stream_ensemble, n_shards=2, history=64,
                              restart=RestartPolicy(max_restarts=2,
                                                    window=300.0))
        try:
            name = stream_on_shard(1, 2)
            fleet.update_batch(name, sine_regime(10, start=360))
            os.kill(fleet.worker_pids()[1], 9)
            updates = fleet.update_batch(name, sine_regime(4, start=370))
            assert len(updates) == 4
            stat = next(s for s in fleet.stats() if s.name == name)
            assert stat.n_observations == 4     # fresh factory: no state
        finally:
            fleet.shutdown()

    def test_quarantine_after_exhausted_budget(self, shm_namespace,
                                               stream_ensemble):
        """A shard over its restart budget is fenced off; the rest of
        the fleet keeps serving and telemetry keeps answering."""
        registry = obs.MetricsRegistry()
        obs.set_default_registry(registry)
        fleet = sharded_fleet(stream_ensemble, n_shards=2, history=64,
                              restart=RestartPolicy(max_restarts=0,
                                                    window=300.0))
        try:
            sick = stream_on_shard(0, 2, tag="sick")
            fine = stream_on_shard(1, 2, tag="fine")
            os.kill(fleet.worker_pids()[0], 9)
            with pytest.raises(ShardCrashed, match="quarantined"):
                fleet.update_batch(sick, sine_regime(3, start=360))
            with pytest.raises(ShardCrashed, match="quarantined"):
                fleet.update_batch(sick, sine_regime(3, start=363))
            assert len(fleet.update_batch(
                fine, sine_regime(3, start=360))) == 3
            health = fleet.health()
            assert health["state"] == "degraded"
            assert health["quarantined"] == [0]
            assert health["shards"][0]["status"] == "quarantined"
            telemetry = fleet.telemetry()   # skips the quarantined shard
            assert [s["index"] for s in telemetry["shards"]] == [1]
            assert registry.counter(
                "repro_shard_quarantined_total").value == 1
        finally:
            fleet.shutdown()


# ----------------------------------------------------------------------
# Sharded checkpoint validation: fail loudly, name the shard, pre-fork
# ----------------------------------------------------------------------
class TestShardedCheckpointValidation:
    @pytest.fixture
    def sharded_ckpt(self, shm_namespace, stream_ensemble, tmp_path):
        fleet = sharded_fleet(stream_ensemble, n_shards=2, history=64)
        try:
            fleet.update_batch(stream_on_shard(0, 2),
                               sine_regime(8, start=360))
            fleet.checkpoint(str(tmp_path / "ckpt"))
        finally:
            fleet.shutdown()
        return str(tmp_path / "ckpt")

    def test_intact_checkpoint_validates_and_verifies(self, sharded_ckpt):
        from repro.core import validate_sharded_checkpoint, \
            verify_checkpoint
        manifest = validate_sharded_checkpoint(sharded_ckpt)
        assert len(manifest["shards"]) == 2
        assert verify_checkpoint(sharded_ckpt)

    def test_missing_shard_dir_raises_naming_the_shard(
            self, sharded_ckpt, shm_namespace):
        import shutil
        from repro.core import CheckpointError, verify_checkpoint
        shutil.rmtree(os.path.join(sharded_ckpt, "shard_1"))
        with pytest.raises(CheckpointError, match="shard_1"):
            load_sharded_fleet(sharded_ckpt, namespace=shm_namespace)
        assert not verify_checkpoint(sharded_ckpt)
        # Validation runs before any fork: no shard process was spawned.
        assert list_segments(shm_namespace) == []

    def test_partially_deleted_shard_raises_naming_the_shard(
            self, sharded_ckpt, shm_namespace):
        import json
        from repro.core import CheckpointError, verify_checkpoint
        shard_dir = os.path.join(sharded_ckpt, "shard_0")
        with open(os.path.join(shard_dir, "checkpoint.json")) as handle:
            listed = json.load(handle)["files"]
        os.remove(os.path.join(shard_dir, sorted(listed)[-1]))
        with pytest.raises(CheckpointError, match="shard_0"):
            load_sharded_fleet(sharded_ckpt, namespace=shm_namespace)
        assert not verify_checkpoint(sharded_ckpt)

    def test_missing_sharded_manifest_raises(self, sharded_ckpt,
                                             shm_namespace):
        from repro.core import CheckpointError
        os.remove(os.path.join(sharded_ckpt, "sharded.json"))
        with pytest.raises(CheckpointError, match="sharded.json"):
            load_sharded_fleet(sharded_ckpt, namespace=shm_namespace)


# ----------------------------------------------------------------------
# Broker failover + in-broker build retry
# ----------------------------------------------------------------------
class TestBrokerFailover:
    def test_watchdog_restarts_broker_and_port_reattaches(
            self, shm_namespace, mp_handshake):
        """Crash the broker on its first message (the submit): the
        pending handle resolves ``discarded``, the watchdog respawns
        the broker over the same queues, the port re-attaches via the
        shared pid value, and the next submit builds remotely again —
        no degraded-forever.  The crash rides the ``broker.loop`` fault
        point rather than an arbitrary-moment SIGKILL because the point
        fires with the inbox rlock *released*: a kill landing inside
        ``Queue.get()`` would poison the fork-shared lock for the
        respawned broker (the documented crash-safety contract of the
        point's placement)."""
        registry = obs.MetricsRegistry()
        obs.set_default_registry(registry)
        plan = FaultPlan(seed=FAULT_SEED).at("broker.loop", hit=1,
                                             action="crash")
        with use_plan(plan):
            broker = BuildBroker(n_ports=1, n_workers=1,
                                 worker_context=mp_handshake,
                                 restart=RestartPolicy(max_restarts=2,
                                                       window=300.0),
                                 watchdog_interval=0.01)
        try:
            coordinator = broker.coordinator(0)
            ensemble = fabricate_ensemble()
            history = sine_regime(32, seed=1)
            old_pid = broker.pid
            doomed_client = coordinator.client(ProcessGatedRefresher())
            doomed = doomed_client.submit(ensemble, history, 10)
            assert broker.wait_restarted(GATE_TIMEOUT)
            assert broker.pid != old_pid
            assert doomed_client.join(GATE_TIMEOUT)
            assert doomed_client.take() is doomed
            assert doomed.status == "discarded"
            coordinator.port.pump()
            assert not coordinator.port.degraded
            assert coordinator.port.n_reattached == 1
            # The doomed submit died with the broker (never dispatched),
            # so the gate pair is untouched and serves the rebuild.
            mp_handshake["gate"].set()
            retry_client = coordinator.client(ProcessGatedRefresher())
            rebuilt = retry_client.submit(ensemble, history, 20)
            assert retry_client.join(GATE_TIMEOUT)
            assert retry_client.take() is rebuilt and rebuilt.ready
            wait_started(mp_handshake)
            health = broker.health()
            assert health["alive"] and not health["quarantined"]
            assert health["restarts"] == 1
            assert health["recent_restarts"] == 1
            assert registry.counter("repro_restarts_total",
                                    component="broker").value == 1
            assert registry.counter(
                "repro_broker_reattached_total").value == 1
        finally:
            broker.shutdown()
        assert list_segments(shm_namespace) == []

    def test_quarantined_broker_stays_dead(self, shm_namespace,
                                           mp_handshake):
        broker = BuildBroker(n_ports=1, n_workers=1,
                             worker_context=mp_handshake,
                             restart=RestartPolicy(max_restarts=0,
                                                   window=300.0),
                             watchdog_interval=0.01)
        try:
            broker.kill()
            deadline = time.monotonic() + GATE_TIMEOUT
            while not broker.health()["quarantined"]:
                assert time.monotonic() < deadline, "never quarantined"
                time.sleep(0.01)
            assert not broker.alive()
            assert broker.health()["restarts"] == 0
        finally:
            broker.shutdown(timeout=1.0)
        assert list_segments(shm_namespace) == []

    def test_failed_build_retried_in_broker_after_backoff(
            self, shm_namespace, mp_handshake):
        """A scheduled one-shot fault fails the first build attempt in
        the worker; the broker re-queues it behind a jittered backoff
        gate and the second attempt resolves the same handle ready."""
        plan = FaultPlan(seed=FAULT_SEED).at("pool.build", hit=1,
                                             action="error")
        with use_plan(plan):
            broker = BuildBroker(n_ports=1, n_workers=1,
                                 worker_context=mp_handshake,
                                 max_build_retries=1, retry_delay=0.001)
            try:
                mp_handshake["gate"].set()
                coordinator = broker.coordinator(0)
                client = coordinator.client(ProcessGatedRefresher())
                handle = client.submit(fabricate_ensemble(),
                                       sine_regime(32, seed=1), 10)
                assert client.join(GATE_TIMEOUT)
                assert client.take() is handle and handle.ready
                wait_started(mp_handshake)      # the successful attempt
                stats = coordinator.stats()
                assert stats.n_retried == 1
                assert stats.n_completed == 1
                assert stats.n_failed == 0
            finally:
                broker.shutdown()
        assert list_segments(shm_namespace) == []


# ----------------------------------------------------------------------
# Serving: request deadlines, degraded healthz, client retry/deadline
# ----------------------------------------------------------------------
class TestServingRobustness:
    def test_request_timeout_answers_timeout_and_drops_late_result(self):
        """A wedged flush must answer ``timeout`` at the deadline, the
        late result must be dropped (never desynchronise the framing),
        and the connection must keep serving afterwards."""
        fleet = BlockingFleet()
        registry = obs.MetricsRegistry()
        obs.set_default_registry(registry)

        async def scenario():
            server = DetectionServer(fleet, request_timeout=0.1,
                                     registry=registry)
            await server.start()
            client = await ServingClient.connect("127.0.0.1", server.port)
            timed_out = await client.update_batch(
                "wedged", sine_regime(2, seed=1))
            fleet.release.set()
            after = await client.update_batch(
                "wedged", sine_regime(2, start=2, seed=1))
            await client.close()
            await server.stop()
            return timed_out, after

        timed_out, after = asyncio.run(scenario())
        assert timed_out == {"status": "timeout", "timeout": 0.1,
                             "id": timed_out["id"]}
        assert after["status"] == "ok"
        assert len(after["results"]) == 2
        assert registry.counter("repro_serving_responses_total",
                                status="timeout").value == 1

    def test_healthz_degrades_on_fleet_health(self):
        class Degraded(BlockingFleet):
            def health(self):
                return {"state": "degraded", "quarantined": [1]}

        degraded = DetectionServer(Degraded())._healthz()
        assert degraded["state"] == "degraded"
        assert degraded["fleet"]["quarantined"] == [1]
        assert DetectionServer(BlockingFleet())._healthz()["state"] == "ok"

        class Wedged(BlockingFleet):
            def health(self):
                raise RuntimeError("health probe wedged")

        wedged = DetectionServer(Wedged())._healthz()
        assert wedged["state"] == "degraded"
        assert "wedged" in wedged["fleet"]["error"]

    @staticmethod
    async def scripted_server(statuses):
        """A protocol-speaking stub: pops one status per request, then
        answers ``ok`` forever.  Returns (server, port, request_log)."""
        log = []

        async def handle(reader, writer):
            while True:
                request = await read_frame(reader)
                if request is None:
                    break
                log.append(request["op"])
                status = statuses.pop(0) if statuses else "ok"
                await write_frame(writer, {"status": status,
                                           "id": request.get("id")})

        server = await asyncio.start_server(handle, "127.0.0.1", 0)
        return server, server.sockets[0].getsockname()[1], log

    def test_client_retries_overloaded_with_backoff_budget(self):
        async def scenario():
            server, port, log = await self.scripted_server(
                ["overloaded", "draining"])
            retry = RetryPolicy(max_retries=3, base_delay=0.0,
                                jitter=False)
            async with await ServingClient.connect(
                    "127.0.0.1", port, retry=retry) as client:
                reply = await client.healthz()
            server.close()
            await server.wait_closed()
            return reply, log

        reply, log = asyncio.run(scenario())
        assert reply["status"] == "ok"
        assert log == ["healthz"] * 3           # two retries then success

    def test_client_without_retry_returns_overloaded_verbatim(self):
        async def scenario():
            server, port, log = await self.scripted_server(["overloaded"])
            async with await ServingClient.connect(
                    "127.0.0.1", port) as client:
                reply = await client.healthz()
            server.close()
            await server.wait_closed()
            return reply, log

        reply, log = asyncio.run(scenario())
        assert reply["status"] == "overloaded"
        assert log == ["healthz"]

    def test_client_retry_budget_exhausted_returns_last_response(self):
        async def scenario():
            server, port, log = await self.scripted_server(
                ["overloaded"] * 10)
            retry = RetryPolicy(max_retries=2, base_delay=0.0,
                                jitter=False)
            async with await ServingClient.connect(
                    "127.0.0.1", port, retry=retry) as client:
                reply = await client.healthz()
            server.close()
            await server.wait_closed()
            return reply, log

        reply, log = asyncio.run(scenario())
        assert reply["status"] == "overloaded"
        assert log == ["healthz"] * 3           # 1 attempt + 2 retries

    def test_client_deadline_raises_and_closes_connection(self):
        async def scenario():
            never = asyncio.Event()

            async def handle(reader, writer):
                await read_frame(reader)
                await never.wait()              # read, never reply

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = await ServingClient.connect("127.0.0.1", port,
                                                 deadline=0.1)
            with pytest.raises(ServingTimeout, match="healthz"):
                await client.healthz()
            closed = client._writer.is_closing()
            never.set()
            server.close()
            await server.wait_closed()
            return closed

        assert asyncio.run(scenario())


# ----------------------------------------------------------------------
# Shared-memory orphan sweep under a concurrent two-process race
# ----------------------------------------------------------------------
class TestOrphanSweepRace:
    def test_concurrent_sweeps_remove_orphan_and_spare_live_segment(
            self, shm_namespace):
        """Two processes sweep the same namespace at the same instant:
        the dead-owner orphan goes (in exactly one of them — the loser's
        unlink tolerates the FileNotFoundError), the live segment stays
        mapped and bit-intact, and neither sweeper crashes."""
        from multiprocessing import shared_memory
        ctx = mp.get_context("fork")
        manifest = publish_pack(fabricate_ensemble(), dtype=np.float64)

        marker = ctx.Process(target=int)
        marker.start()
        marker.join()
        orphan = shared_memory.SharedMemory(
            create=True, size=64,
            name=f"repro-{shm_namespace}-{marker.pid}-feedface")
        orphan.close()
        shm_mod._unregister(orphan.name)
        assert sorted(list_segments(shm_namespace)) == sorted(
            [orphan.name, manifest["segment"]])

        barrier = ctx.Barrier(3)

        def sweeper():
            barrier.wait(GATE_TIMEOUT)
            shm_mod.sweep_orphans(shm_namespace)

        sweepers = [ctx.Process(target=sweeper) for _ in range(2)]
        for process in sweepers:
            process.start()
        barrier.wait(GATE_TIMEOUT)              # all release together
        for process in sweepers:
            process.join(GATE_TIMEOUT)
        assert [p.exitcode for p in sweepers] == [0, 0]

        survivors = list_segments(shm_namespace)
        assert orphan.name not in survivors
        assert survivors == [manifest["segment"]]
        attached = attach_pack(manifest)        # still valid, not torn
        attached.close()
        assert unlink_pack(manifest)
        assert list_segments(shm_namespace) == []


# ----------------------------------------------------------------------
# Guard overhead: disabled fault hooks must be near-free
# ----------------------------------------------------------------------
def test_faults_disabled_guard_cost_negligible():
    """Same analytic method as ``benchmarks/test_obs_overhead``: the
    disabled path's entire cost is ``if faults.enabled:`` guards, so
    bound guard-count x measured per-guard cost against a measured
    serving micro-batch instead of differencing noisy timings."""
    from repro.streaming import StreamingDetector
    assert not faults.enabled
    iterations = 200_000
    tick = time.perf_counter()
    hits = 0
    for _ in range(iterations):
        if faults.enabled:
            hits += 1                           # pragma: no cover
    guard_seconds = (time.perf_counter() - tick) / iterations
    assert hits == 0

    ensemble = fabricate_ensemble()
    detector = StreamingDetector(ensemble, history=64)
    detector.warm_up(sine_regime(7, seed=3))
    batch = sine_regime(64, start=7, seed=3)
    batch_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        detector.update_batch(batch)
        batch_seconds = min(batch_seconds, time.perf_counter() - start)

    # Guards a sharded serving micro-batch crosses: shard op + update
    # split (2), one dispatch flush, publish/attach/pool/broker paths
    # are off the scoring path — bound generously at 8 per batch.
    fraction = guard_seconds * 8 / batch_seconds
    assert fraction < 0.02, (
        f"disabled fault guards cost {fraction:.2%} of a scoring "
        f"micro-batch (budget 2%)")


# ----------------------------------------------------------------------
# The headline chaos battery: one seeded run, three kinds of death
# ----------------------------------------------------------------------
class TestChaosBattery:
    N_SHARDS = 2
    PHASE_B_OPS = 3                      # update ops per shard before ckpt2

    def serve_phase(self, fleet, names, rows, registry):
        """Serve one batch per stream through a DetectionServer while a
        scheduled shard crash fires under it; return the replies plus a
        healthz snapshot."""

        async def scenario():
            server = DetectionServer(fleet, request_timeout=30.0,
                                     registry=registry)
            await server.start()
            retry = RetryPolicy(max_retries=2, base_delay=0.0,
                                jitter=False, seed=FAULT_SEED)
            clients = [await ServingClient.connect(
                "127.0.0.1", server.port, retry=retry) for _ in names]
            tasks = [asyncio.create_task(client.update_batch(name, rows))
                     for name, client in zip(names, clients)]
            replies = await asyncio.gather(*tasks)
            health = await clients[0].healthz()
            for client in clients:
                await client.close()
            await server.stop()
            return dict(zip(names, replies)), health

        return asyncio.run(scenario())

    def test_single_seeded_run_survives_three_deaths_bit_identically(
            self, shm_namespace, mp_handshake, stream_ensemble, tmp_path):
        """One seeded FaultPlan SIGKILLs a fleet shard (first update op
        after a checkpoint), SIGKILLs a serving-phase shard (first op
        after the second checkpoint), SIGKILLs the broker on its first
        message, and fails one in-flight build in its worker.  The run
        must recover all four — and its post-recovery scores must be
        bit-identical to a fault-free run resumed from the same
        checkpoints."""
        seed = FAULT_SEED
        registry = obs.MetricsRegistry()
        obs.set_default_registry(registry)
        # Both crash arms sit on the first update op after a checkpoint,
        # so crash-consistent respawn loses nothing and bit-identity is
        # provable; the seed still drives every backoff jitter draw.
        plan = (FaultPlan(seed=seed)
                .at("fleet.shard.update", hit=1, action="crash")
                .at("fleet.shard.update", hit=self.PHASE_B_OPS + 1,
                    action="crash")
                .at("broker.loop", hit=1, action="crash")
                .at("pool.build", hit=1, action="error"))
        note = f"chaos seed {seed}: {plan.describe()}"
        names = [stream_on_shard(shard, self.N_SHARDS, tag=f"c{shard}-")
                 for shard in range(self.N_SHARDS)]
        ckpt = str(tmp_path / "ckpt")
        serve_rows = sine_regime(4, start=76, seed=7)
        probe_rows = sine_regime(4, start=80, seed=7)

        with use_plan(plan):
            fleet = sharded_fleet(
                stream_ensemble, n_shards=self.N_SHARDS, history=64,
                restart=RestartPolicy(max_restarts=3, window=300.0),
                namespace=shm_namespace)
            try:
                # Phase A: warm through the non-update op, checkpoint.
                for name in names:
                    fleet.warm_up(name, sine_regime(64, seed=7))
                fleet.checkpoint(ckpt)
                # Phase B: the first update op SIGKILLs one shard; the
                # scatter revives it from the checkpoint and retries, so
                # no observation is lost.
                for k in range(self.PHASE_B_OPS):
                    rows = sine_regime(4, start=64 + 4 * k, seed=7)
                    fleet.update_many({name: rows for name in names})
                assert sum(fleet.health()["restarts"].values()) == 1, note
                # Phase C: checkpoint again, then serve while the second
                # crash arm kills whichever shard scores first.
                fleet.checkpoint(ckpt)
                replies, healthz = self.serve_phase(fleet, names,
                                                    serve_rows, registry)
                statuses = {name: reply["status"]
                            for name, reply in replies.items()}
                assert set(statuses.values()) <= {"ok", "overloaded",
                                                  "timeout"}, note
                assert all(status == "ok"
                           for status in statuses.values()), note
                assert healthz["status"] == "ok", note
                assert healthz["state"] == "degraded", note
                assert healthz["fleet"]["recent_restarts"] >= 1, note
                assert sum(fleet.health()["restarts"].values()) == 2, note
                # Phase D: broker dies on its first message, the
                # watchdog respawns it, the port re-attaches, and the
                # re-submitted build survives a failed first attempt.
                broker = BuildBroker(
                    n_ports=1, n_workers=1, worker_context=mp_handshake,
                    max_build_retries=1, retry_delay=0.001,
                    restart=RestartPolicy(max_restarts=2, window=300.0),
                    watchdog_interval=0.01, namespace=shm_namespace)
                try:
                    mp_handshake["gate"].set()
                    mp_handshake["gate2"].set()
                    coordinator = broker.coordinator(0)
                    ensemble = fabricate_ensemble()
                    history = sine_regime(32, seed=1)
                    doomed_client = coordinator.client(
                        ProcessGatedRefresher())
                    doomed = doomed_client.submit(ensemble, history, 10)
                    assert broker.wait_restarted(GATE_TIMEOUT), note
                    assert doomed_client.join(GATE_TIMEOUT), note
                    assert doomed_client.take() is doomed
                    assert doomed.status == "discarded", note
                    coordinator.port.pump()
                    assert not coordinator.port.degraded, note
                    assert coordinator.port.n_reattached == 1, note
                    retry_client = coordinator.client(
                        ProcessGatedRefresher(tag="retry",
                                              gate_key="gate2",
                                              started_key="started2"))
                    rebuilt = retry_client.submit(ensemble, history, 20)
                    assert retry_client.join(GATE_TIMEOUT), note
                    assert retry_client.take() is rebuilt, note
                    assert rebuilt.ready, note
                    wait_started(mp_handshake, key="started2")
                    stats = coordinator.stats()
                    assert stats.n_retried == 1, note
                    assert broker.health()["restarts"] == 1, note
                finally:
                    broker.shutdown()
                # Phase E: post-recovery probe on the healed fleet.
                chaos_final = fleet.update_many(
                    {name: probe_rows for name in names})
            finally:
                fleet.shutdown()

        # Fault-free control resumed from the same second checkpoint.
        control = load_sharded_fleet(ckpt,
                                     namespace=shm_namespace + "ctl")
        try:
            control_serve = control.update_many(
                {name: serve_rows for name in names})
            control_final = control.update_many(
                {name: probe_rows for name in names})
        finally:
            control.shutdown()

        for name in names:
            rendered = [render_update(update)
                        for update in control_serve[name]]
            assert replies[name]["results"] == rendered, note
            got = [(u.index, u.score, u.threshold, bool(u.alert))
                   for u in chaos_final[name]]
            want = [(u.index, u.score, u.threshold, bool(u.alert))
                    for u in control_final[name]]
            assert got == want, note

        # Every recovery left a telemetry trace in the parent registry.
        assert registry.counter("repro_restarts_total",
                                component="shard").value == 2, note
        assert registry.counter("repro_restarts_total",
                                component="broker").value == 1, note
        assert registry.counter(
            "repro_broker_reattached_total").value == 1, note
        assert list_segments(shm_namespace) == []
