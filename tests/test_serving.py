"""Deterministic battery for the serving front-end (``repro.serving``).

Every asyncio test is gated on events and awaited futures — the server's
``pause_dispatch`` / ``wait_for_queue_depth`` / ``resume_dispatch``
hooks make coalescing observable without a single sleep: hold the
dispatcher, land N concurrent requests in the queue, release, and the
flush *must* fuse them.  Sockets always bind ephemeral ports (the
server's ``port=0`` default, plus the ``free_tcp_port`` conftest helper
where a port must be known up front), so parallel runs never collide.
"""

import asyncio
import os

import numpy as np
import pytest

from tests.conftest import free_tcp_port, sine_regime
from repro import obs
from repro.serving import (DetectionServer, FrameError, ServingClient,
                           encode_frame, split_frames)
from repro.serving.protocol import MAX_FRAME_BYTES, decode_payload
from repro.streaming import shared_fleet

WINDOW = 8          # the stream_ensemble fixture's window length


# ----------------------------------------------------------------------
# Protocol (sans-IO — no sockets, no loop)
# ----------------------------------------------------------------------
def test_frame_roundtrip_and_incremental_split():
    payloads = [{"op": "healthz", "id": index} for index in range(3)]
    wire = b"".join(encode_frame(payload) for payload in payloads)
    # Feed the buffer byte by byte: messages must pop out exactly at
    # frame boundaries and the tail must carry over in between.
    seen, buffer = [], b""
    for index in range(len(wire)):
        buffer += wire[index:index + 1]
        messages, buffer = split_frames(buffer)
        seen.extend(messages)
    assert seen == payloads
    assert buffer == b""


def test_frame_errors():
    with pytest.raises(FrameError):
        decode_payload(b"not json")
    with pytest.raises(FrameError):
        decode_payload(b"[1, 2]")            # JSON but not an object
    oversize = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
    with pytest.raises(FrameError):
        split_frames(oversize + b"x")
    with pytest.raises((FrameError, ValueError)):
        encode_frame({"bad": float("nan")})  # NaN never hits the wire


# ----------------------------------------------------------------------
# Server scaffolding
# ----------------------------------------------------------------------
def make_fleet(stream_ensemble, streams, warm_rows=64, **fleet_kwargs):
    fleet = shared_fleet(stream_ensemble, history=256, **fleet_kwargs)
    series = sine_regime(warm_rows, seed=7)
    for name in streams:
        fleet.warm_up(name, series)
    return fleet


async def serve(fleet, **server_kwargs):
    server = DetectionServer(fleet, **server_kwargs)
    await server.start()
    return server


async def connect_clients(server, count):
    return [await ServingClient.connect("127.0.0.1", server.port)
            for _ in range(count)]


async def close_all(server, clients):
    for client in clients:
        await client.close()
    await server.stop()


# ----------------------------------------------------------------------
# The acceptance battery
# ----------------------------------------------------------------------
def test_coalesces_concurrent_streams_into_one_fused_batch(stream_ensemble):
    """N concurrent single-observation updates for N streams sharing an
    ensemble must score in ONE fused call: the coalesce-size histogram
    records a batch of N, and every request is answered ``ok``."""
    registry = obs.MetricsRegistry()
    obs.set_default_registry(registry)
    streams = [f"s{index}" for index in range(6)]

    async def scenario():
        fleet = make_fleet(stream_ensemble, streams)
        server = await serve(fleet)
        clients = await connect_clients(server, len(streams))
        row = sine_regime(1, start=64, seed=7)[0]
        server.pause_dispatch()
        tasks = [asyncio.create_task(client.update(name, row))
                 for name, client in zip(streams, clients)]
        await server.wait_for_queue_depth(len(streams))
        server.resume_dispatch()
        replies = await asyncio.gather(*tasks)
        await close_all(server, clients)
        return replies

    replies = asyncio.run(scenario())
    assert all(reply["status"] == "ok" for reply in replies)
    assert all(len(reply["results"]) == 1 for reply in replies)
    fused = registry.histogram("repro_fleet_coalesce_size", low=1.0,
                               high=1e4, buckets_per_decade=4)
    assert fused.count >= 1
    assert fused.max >= len(streams)     # all six fused into one call
    dispatch = registry.histogram("repro_serving_dispatch_batch_requests",
                                  low=1.0, high=1e5, buckets_per_decade=4)
    assert dispatch.max >= len(streams)


def test_coalesced_results_bit_identical_to_serial(stream_ensemble):
    """The whole point of the two-phase split: updates served through
    coalesced flushes equal serial per-stream ``update_batch`` calls
    bit for bit (scores, thresholds, alerts, indexes)."""
    streams = [f"s{index}" for index in range(4)]
    ticks = sine_regime(10, start=64, seed=7)

    async def scenario():
        fleet = make_fleet(stream_ensemble, streams)
        server = await serve(fleet)
        clients = await connect_clients(server, len(streams))
        served = {name: [] for name in streams}
        for row in ticks:
            server.pause_dispatch()
            tasks = [asyncio.create_task(client.update(name, row))
                     for name, client in zip(streams, clients)]
            await server.wait_for_queue_depth(len(streams))
            server.resume_dispatch()
            for name, reply in zip(streams, await asyncio.gather(*tasks)):
                assert reply["status"] == "ok"
                served[name].append(reply["result"])
        await close_all(server, clients)
        return served

    served = asyncio.run(scenario())

    serial_fleet = make_fleet(stream_ensemble, streams)
    for name in streams:
        for tick, row in enumerate(ticks):
            [update] = serial_fleet.update_batch(name, row[None])
            over_wire = served[name][tick]
            assert over_wire["index"] == update.index
            assert over_wire["score"] == update.score      # exact
            assert over_wire["threshold"] == update.threshold
            assert over_wire["alert"] == bool(update.alert)


def test_same_stream_requests_merge_in_arrival_order(stream_ensemble):
    """Two concurrent requests for ONE stream concatenate in arrival
    order inside the flush and split back to their own replies."""

    async def scenario():
        fleet = make_fleet(stream_ensemble, ["solo"])
        server = await serve(fleet)
        first, second = await connect_clients(server, 2)
        rows = sine_regime(2, start=64, seed=7)
        server.pause_dispatch()
        task_one = asyncio.create_task(first.update("solo", rows[0]))
        await server.wait_for_queue_depth(1)
        task_two = asyncio.create_task(second.update("solo", rows[1]))
        await server.wait_for_queue_depth(2)
        server.resume_dispatch()
        replies = await asyncio.gather(task_one, task_two)
        await close_all(server, [first, second])
        return replies

    reply_one, reply_two = asyncio.run(scenario())
    assert reply_one["status"] == reply_two["status"] == "ok"
    # Arrival order survives the merge: indexes are consecutive.
    assert reply_two["result"]["index"] == \
        reply_one["result"]["index"] + 1


def test_backpressure_returns_overloaded(stream_ensemble):
    """A full pending queue answers ``overloaded`` immediately instead
    of buffering; the queued requests still score once released."""
    registry = obs.MetricsRegistry()
    obs.set_default_registry(registry)

    async def scenario():
        fleet = make_fleet(stream_ensemble, ["a", "b", "c"])
        server = await serve(fleet, max_pending=2)
        clients = await connect_clients(server, 3)
        row = sine_regime(1, start=64, seed=7)[0]
        server.pause_dispatch()
        queued = [asyncio.create_task(client.update(name, row))
                  for name, client in zip("ab", clients)]
        await server.wait_for_queue_depth(2)
        shed = await clients[2].update("c", row)     # queue is full now
        server.resume_dispatch()
        admitted = await asyncio.gather(*queued)
        await close_all(server, clients)
        return shed, admitted

    shed, admitted = asyncio.run(scenario())
    assert shed["status"] == "overloaded"
    assert shed["queue_depth"] == 2
    assert all(reply["status"] == "ok" for reply in admitted)
    assert registry.counter("repro_serving_responses_total",
                            status="overloaded").value == 1


def test_graceful_shutdown_answers_all_in_flight(stream_ensemble):
    """``stop()`` drains: every admitted request is scored and answered
    (a drain overrides a dispatcher hold), then the listener refuses
    new connections."""
    streams = ["a", "b", "c"]

    async def scenario():
        fleet = make_fleet(stream_ensemble, streams)
        server = await serve(fleet)
        clients = await connect_clients(server, len(streams))
        row = sine_regime(1, start=64, seed=7)[0]
        server.pause_dispatch()
        tasks = [asyncio.create_task(client.update(name, row))
                 for name, client in zip(streams, clients)]
        await server.wait_for_queue_depth(len(streams))
        port = server.port
        await server.stop()                  # drain with the hold on
        replies = await asyncio.gather(*tasks)
        refused = None
        try:
            await ServingClient.connect("127.0.0.1", port)
        except OSError as exc:
            refused = exc
        for client in clients:
            await client.close()
        return replies, refused

    replies, refused = asyncio.run(scenario())
    assert all(reply["status"] == "ok" for reply in replies)
    assert refused is not None


def test_draining_rejects_new_scoring_work(stream_ensemble):
    """Scoring and warm-up requests that arrive during a drain are
    answered ``draining`` (white-box: the drain flag is raised directly
    so the rejection window is deterministic)."""

    async def scenario():
        fleet = make_fleet(stream_ensemble, ["a"])
        server = await serve(fleet)
        [client] = await connect_clients(server, 1)
        row = sine_regime(1, start=64, seed=7)[0]
        server._draining = True
        shed_update = await client.update("a", row)
        shed_warm = await client.warm_up("a", sine_regime(16, seed=7))
        health = await client.healthz()
        server._draining = False
        await close_all(server, [client])
        return shed_update, shed_warm, health

    shed_update, shed_warm, health = asyncio.run(scenario())
    assert shed_update["status"] == "draining"
    assert shed_warm["status"] == "draining"
    assert health["status"] == "ok" and health["draining"] is True


def test_stop_checkpoints_the_fleet(stream_ensemble, tmp_path):
    """With ``checkpoint_dir`` configured, a drain persists the fleet —
    and the checkpoint round-trips through ``load_fleet``."""
    from repro.core.persistence import load_fleet
    directory = str(tmp_path / "ckpt")
    streams = ["left", "right"]

    async def scenario():
        fleet = make_fleet(stream_ensemble, streams)
        server = await serve(fleet, checkpoint_dir=directory)
        [client] = await connect_clients(server, 1)
        for row in sine_regime(3, start=64, seed=7):
            reply = await client.update("left", row)
            assert reply["status"] == "ok"
        await close_all(server, [client])

    asyncio.run(scenario())
    restored = load_fleet(directory)
    assert sorted(restored.names) == sorted(streams)


def test_shape_mismatch_answers_only_its_own_request(stream_ensemble):
    """A bad-width request in a flush gets an ``error`` reply; the good
    request sharing the flush still scores — and nothing double-ingests
    (the stream's arrival index keeps advancing by exactly one)."""

    async def scenario():
        fleet = make_fleet(stream_ensemble, ["good", "bad"])
        server = await serve(fleet)
        good_client, bad_client = await connect_clients(server, 2)
        row = sine_regime(1, start=64, seed=7)[0]
        server.pause_dispatch()
        good_task = asyncio.create_task(good_client.update("good", row))
        await server.wait_for_queue_depth(1)
        bad_task = asyncio.create_task(
            bad_client.update("bad", [1.0, 2.0, 3.0]))   # dims=2 fleet
        await server.wait_for_queue_depth(2)
        server.resume_dispatch()
        good_reply, bad_reply = await asyncio.gather(good_task, bad_task)
        follow_up = await good_client.update("good",
                                             sine_regime(1, start=65,
                                                         seed=7)[0])
        await close_all(server, [good_client, bad_client])
        return good_reply, bad_reply, follow_up

    good_reply, bad_reply, follow_up = asyncio.run(scenario())
    assert good_reply["status"] == "ok"
    assert bad_reply["status"] == "error"
    assert "(B, 2)" in bad_reply["error"]
    assert follow_up["status"] == "ok"
    assert follow_up["result"]["index"] == \
        good_reply["result"]["index"] + 1


def test_metrics_healthz_and_refresh_report(stream_ensemble):
    """The introspection ops: Prometheus text with the serving
    instruments, the refresh-admission report, and a healthz that sees
    the coordinator when the fleet has one."""
    registry = obs.MetricsRegistry()
    obs.set_default_registry(registry)

    async def scenario():
        fleet = make_fleet(stream_ensemble, ["a"], refresh_mode="async",
                           max_concurrent_builds=1)
        server = await serve(fleet)
        [client] = await connect_clients(server, 1)
        reply = await client.update("a", sine_regime(1, start=64,
                                                     seed=7)[0])
        assert reply["status"] == "ok"
        metrics = await client.metrics()
        health = await client.healthz()
        telemetry = await client.telemetry()
        await close_all(server, [client])
        fleet.shutdown()
        return metrics, health, telemetry

    metrics, health, telemetry = asyncio.run(scenario())
    assert metrics["status"] == "ok"
    body = metrics["body"]
    for needle in ("repro_serving_requests_total",
                   "repro_serving_request_seconds",
                   "repro_fleet_coalesce_size"):
        assert needle in body
    assert metrics["refresh_report"]["max_concurrent_builds"] == 1
    assert "dedup_ratio" in metrics["refresh_report"]
    assert health["healthy"] is True
    assert health["coordinator"] is not None
    assert health["coordinator"]["n_queued"] == 0
    assert telemetry["status"] == "ok"
    assert any(stat["name"] == "a"
               for stat in telemetry["telemetry"]["streams"])


def test_unknown_op_and_garbage_frames(stream_ensemble):
    async def scenario():
        fleet = make_fleet(stream_ensemble, ["a"])
        server = await serve(fleet)
        [client] = await connect_clients(server, 1)
        unknown = await client.request({"op": "reboot"})
        # A raw garbage frame: valid length prefix, invalid JSON body.
        reader, writer = await asyncio.open_connection("127.0.0.1",
                                                       server.port)
        writer.write(len(b"garbage").to_bytes(4, "big") + b"garbage")
        await writer.drain()
        from repro.serving.protocol import read_frame
        reply = await read_frame(reader)
        eof = await reader.read()            # server closes afterwards
        writer.close()
        await writer.wait_closed()
        await close_all(server, [client])
        return unknown, reply, eof

    unknown, reply, eof = asyncio.run(scenario())
    assert unknown["status"] == "error"
    assert "unknown op" in unknown["error"]
    assert reply["status"] == "error"
    assert eof == b""


def test_server_on_a_preallocated_port(stream_ensemble):
    """The ``free_tcp_port`` helper path: bind a known-free explicit
    port instead of an ephemeral one (some deployments pin ports)."""
    port = free_tcp_port()

    async def scenario():
        fleet = make_fleet(stream_ensemble, ["a"])
        server = await serve(fleet, port=port)
        assert server.port == port
        [client] = await connect_clients(server, 1)
        health = await client.healthz()
        await close_all(server, [client])
        return health

    assert asyncio.run(scenario())["status"] == "ok"


def test_connecting_to_an_unbound_port_fails(free_tcp_port):
    """Negative control for the fixture: nothing listens on a port the
    fixture handed out (so tests that assert refused-connection are
    meaningful)."""

    async def scenario():
        try:
            await ServingClient.connect("127.0.0.1", free_tcp_port)
        except OSError:
            return True
        return False

    assert asyncio.run(scenario())


@pytest.mark.skipif(os.name != "posix", reason="sharded fleet forks")
def test_serving_a_sharded_fleet(stream_ensemble, shm_namespace):
    """The front-end drives a multi-process ShardedFleet through the
    same coalesced path: per-shard ``update_coalesced`` ops, answers
    ``ok``, and the drain leaves no orphan shard processes."""
    from repro.streaming import sharded_fleet
    streams = [f"s{index}" for index in range(5)]

    async def scenario():
        fleet = sharded_fleet(stream_ensemble, n_shards=2, history=256)
        try:
            series = sine_regime(64, seed=7)
            for name in streams:
                fleet.warm_up(name, series)
            server = await serve(fleet)
            clients = await connect_clients(server, len(streams))
            row = sine_regime(1, start=64, seed=7)[0]
            server.pause_dispatch()
            tasks = [asyncio.create_task(client.update(name, row))
                     for name, client in zip(streams, clients)]
            await server.wait_for_queue_depth(len(streams))
            server.resume_dispatch()
            replies = await asyncio.gather(*tasks)
            serial = {name: fleet.update_batch(
                name, sine_regime(1, start=65, seed=7)) for name in streams}
            await close_all(server, clients)
            return replies, serial
        finally:
            fleet.shutdown()

    replies, serial = asyncio.run(scenario())
    assert all(reply["status"] == "ok" for reply in replies)
    # The shard processes kept per-stream order: the follow-up serial
    # tick continues each stream's index sequence.
    for name, reply in zip(streams, replies):
        assert serial[name][0].index == reply["result"]["index"] + 1
