"""Fused-vs-loop equivalence battery for the batched inference engine.

The contract of :mod:`repro.core.fused`: with float64 the fused scorer
reproduces the per-model scoring loop **bit for bit** (same elementwise
op order, same GEMM dot products); with float32 (the default inference
dtype) it agrees within 1e-5 relative tolerance.  The battery covers
ensemble sizes M in {1, 5, 40}, uni- and multivariate series, every
architecture toggle, streaming refresh swaps and save/load round-trips.
"""

import threading

import numpy as np
import pytest

from repro.core import (CAEConfig, CAEEnsemble, EnsembleConfig,
                        FusedEnsembleScorer, load_ensemble, save_ensemble)
from repro.core.cae import CAE
from repro.datasets.preprocess import StandardScaler
from repro.nn import inference_dtype, inference_precision
from tests.conftest import sine_regime


def make_series(dims: int, length: int = 320, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    base = np.stack([np.sin(2 * np.pi * t / (17 + 5 * d))
                     for d in range(dims)], axis=1)
    return base + 0.05 * rng.standard_normal((length, dims))


def trained_ensemble(dims: int, n_models: int, seed: int = 0,
                     **config_kwargs) -> CAEEnsemble:
    config_kwargs.setdefault("n_layers", 2)
    ensemble = CAEEnsemble(
        CAEConfig(input_dim=dims, embed_dim=8, window=8, **config_kwargs),
        EnsembleConfig(n_models=n_models, epochs_per_model=1, seed=seed,
                       max_training_windows=32))
    return ensemble.fit(make_series(dims, seed=seed))


def fabricated_ensemble(dims: int, n_models: int,
                        seed: int = 0) -> CAEEnsemble:
    """An inference-ready ensemble with random-init models.

    Training is irrelevant to the fused-vs-loop comparison (both paths
    consume the same weights), so large M is fabricated cheaply.
    """
    config = CAEConfig(input_dim=dims, embed_dim=8, window=8, n_layers=2)
    ensemble = CAEEnsemble(config, EnsembleConfig(n_models=n_models, seed=0))
    root = np.random.default_rng(seed)
    ensemble.models = [CAE(config, np.random.default_rng(
        root.integers(2 ** 32))) for _ in range(n_models)]
    ensemble.scaler = StandardScaler().fit(make_series(dims, seed=seed))
    return ensemble


def assert_fused_equivalent(ensemble: CAEEnsemble, series: np.ndarray):
    """Both scoring entry points: float64 exact, float32 within 1e-5."""
    loop = ensemble.score(series, fused=False)
    with inference_precision(np.float64):
        np.testing.assert_array_equal(ensemble.score(series, fused=True),
                                      loop)
    np.testing.assert_allclose(ensemble.score(series, fused=True), loop,
                               rtol=1e-5)
    window = ensemble.cae_config.window
    windows = np.stack([series[i:i + window] for i in range(24)])
    loop_last = ensemble.score_windows_last(windows, fused=False)
    with inference_precision(np.float64):
        np.testing.assert_array_equal(
            ensemble.score_windows_last(windows, fused=True), loop_last)
    np.testing.assert_allclose(
        ensemble.score_windows_last(windows, fused=True), loop_last,
        rtol=1e-5)


class TestEquivalence:
    @pytest.mark.parametrize("dims", [1, 3])
    @pytest.mark.parametrize("n_models", [1, 5])
    def test_trained_ensembles(self, dims, n_models):
        ensemble = trained_ensemble(dims, n_models)
        assert_fused_equivalent(ensemble, make_series(dims, seed=9))

    @pytest.mark.parametrize("dims", [1, 3])
    def test_forty_model_ensemble(self, dims):
        ensemble = fabricated_ensemble(dims, 40)
        assert_fused_equivalent(ensemble, make_series(dims, seed=9))

    @pytest.mark.parametrize("kwargs", [
        dict(reconstruct="embedding"),
        dict(use_attention=False),
        dict(use_glu=False),
        dict(use_glu=False, use_attention=False),
        dict(position_mode="table"),
        dict(kernel_size=5),
        dict(n_layers=1),
    ])
    def test_architecture_toggles(self, kwargs):
        ensemble = trained_ensemble(2, 2, **kwargs)
        assert_fused_equivalent(ensemble, make_series(2, seed=9))

    def test_mean_aggregation(self):
        ensemble = CAEEnsemble(
            CAEConfig(input_dim=2, embed_dim=8, window=8, n_layers=1),
            EnsembleConfig(n_models=3, epochs_per_model=1, seed=0,
                           aggregation="mean", max_training_windows=32))
        ensemble.fit(make_series(2))
        assert_fused_equivalent(ensemble, make_series(2, seed=9))

    def test_no_rescale(self):
        ensemble = CAEEnsemble(
            CAEConfig(input_dim=2, embed_dim=8, window=8, n_layers=1),
            EnsembleConfig(n_models=2, epochs_per_model=1, seed=0,
                           rescale=False, max_training_windows=32))
        ensemble.fit(make_series(2))
        assert_fused_equivalent(ensemble, make_series(2, seed=9))

    @pytest.mark.parametrize("n_models", [1, 2, 5, 99])
    def test_n_models_slicing(self, n_models):
        ensemble = trained_ensemble(2, 5)
        series = make_series(2, seed=9)
        loop = ensemble.window_scores(series, n_models=n_models,
                                      fused=False)
        with inference_precision(np.float64):
            fused = ensemble.window_scores(series, n_models=n_models,
                                           fused=True)
        np.testing.assert_array_equal(fused, loop)

    def test_chunk_boundaries_are_invisible(self, monkeypatch):
        """Chunked and single-pass fused scoring are bit-identical —
        windows are independent, so the split is pure memory shaping."""
        ensemble = trained_ensemble(2, 3)
        series = make_series(2, seed=9)
        one_pass = ensemble.score(series)
        monkeypatch.setattr(FusedEnsembleScorer, "CHUNK_TARGET_ROWS", 5)
        ensemble.invalidate_fused()
        np.testing.assert_array_equal(ensemble.score(series), one_pass)

    def test_scalar_window_matches_batch(self):
        ensemble = trained_ensemble(2, 3)
        series = make_series(2, seed=9)
        window = ensemble.cae_config.window
        windows = np.stack([series[i:i + window] for i in range(10)])
        batch = ensemble.score_windows_last(windows)
        for i in range(10):
            assert ensemble.score_window(windows[i]) == batch[i]

    def test_repeated_calls_reuse_workspace_identically(self):
        ensemble = trained_ensemble(2, 3)
        series = make_series(2, seed=9)
        first = ensemble.score(series)
        for _ in range(3):
            np.testing.assert_array_equal(ensemble.score(series), first)

    def test_concurrent_scoring_threads(self):
        """The workspace is thread-local: parallel scorers sharing one
        fused scorer must not corrupt each other's buffers."""
        ensemble = trained_ensemble(2, 3)
        series = make_series(2, seed=9)
        expected = ensemble.score(series)
        results, errors = {}, []

        def work(tag):
            try:
                for _ in range(5):
                    results[tag] = ensemble.score(series)
            except Exception as exc:          # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert not errors
        for scores in results.values():
            np.testing.assert_array_equal(scores, expected)


class TestCacheLifecycle:
    def test_scorer_cached_between_calls(self):
        ensemble = trained_ensemble(2, 2)
        series = make_series(2, seed=9)
        ensemble.score(series)
        scorer = ensemble._fused_scorer
        assert scorer is not None
        ensemble.score(series)
        assert ensemble._fused_scorer is scorer

    def test_refit_rebuilds_scorer(self):
        ensemble = trained_ensemble(2, 2)
        series = make_series(2, seed=9)
        before = ensemble.score(series)
        scorer = ensemble._fused_scorer
        ensemble.fit(make_series(2, seed=5))
        after = ensemble.score(series)
        assert ensemble._fused_scorer is not scorer
        assert not np.array_equal(before, after)
        assert_fused_equivalent(ensemble, series)

    def test_model_list_swap_detected(self):
        ensemble = trained_ensemble(2, 3)
        series = make_series(2, seed=9)
        ensemble.score(series)
        ensemble.models = ensemble.models[:2]     # drop a model
        assert_fused_equivalent(ensemble, series)

    def test_in_place_mutation_needs_invalidate(self):
        ensemble = trained_ensemble(2, 2)
        series = make_series(2, seed=9)
        stale = ensemble.score(series)
        # In-place weight surgery is invisible to the id fingerprint...
        for model in ensemble.models:
            state = {name: values * 1.5
                     for name, values in model.state_dict().items()}
            model.load_state_dict(state)
        np.testing.assert_array_equal(ensemble.score(series), stale)
        # ... until the cache is dropped explicitly.
        ensemble.invalidate_fused()
        fresh = ensemble.score(series)
        assert not np.array_equal(fresh, stale)
        assert_fused_equivalent(ensemble, series)

    def test_dtype_change_rebuilds(self):
        ensemble = trained_ensemble(2, 2)
        series = make_series(2, seed=9)
        ensemble.score(series)
        assert ensemble._fused_scorer.dtype == inference_dtype()
        with inference_precision(np.float64):
            ensemble.score(series)
            assert ensemble._fused_scorer.dtype == np.float64

    def test_unfitted_rejected(self):
        ensemble = CAEEnsemble(CAEConfig(input_dim=2))
        with pytest.raises(RuntimeError):
            ensemble.fused_scorer()
        with pytest.raises(ValueError):
            FusedEnsembleScorer([], CAEConfig(input_dim=2))

    def test_bad_window_shapes_rejected(self):
        ensemble = trained_ensemble(2, 2)
        with pytest.raises(ValueError):
            ensemble.fused_scorer().window_scores(np.zeros((4, 3, 2)))
        with pytest.raises(ValueError):
            ensemble.fused_scorer().window_scores(np.zeros((8, 2)))


class TestAfterRefreshAndPersistence:
    def test_streaming_refresh_swap_stays_equivalent(self):
        """After a drift-triggered inline refresh swap the serving
        ensemble is a new instance with packed fused weights — its fused
        and per-model scores must still match."""
        from repro.streaming import (DDMDrift, EnsembleRefresher,
                                     StreamingDetector)
        from tests.conftest import make_stream_ensemble
        detector = StreamingDetector(
            make_stream_ensemble(epochs=1),
            drift_detector=DDMDrift(min_samples=20),
            refresher=EnsembleRefresher(min_history=80, epochs_per_model=1),
            history=256)
        detector.warm_up(sine_regime(7, start=353))
        detector.update_batch(sine_regime(60, start=360))
        shifted = sine_regime(200, start=420, shift=3.0)
        for start in range(0, 200, 20):
            detector.update_batch(shifted[start:start + 20])
        assert detector.n_refreshes >= 1
        refreshed = detector.ensemble
        assert refreshed._fused_scorer is not None   # packed at build time
        assert_fused_equivalent(refreshed, sine_regime(120, start=620,
                                                       shift=3.0))

    def test_save_load_round_trip(self, tmp_path):
        ensemble = trained_ensemble(3, 5)
        series = make_series(3, seed=9)
        save_ensemble(ensemble, str(tmp_path / "ensemble"))
        reloaded = load_ensemble(str(tmp_path / "ensemble"))
        # Same weights -> bit-identical fused scores, and the reloaded
        # instance honours the full equivalence contract.
        np.testing.assert_array_equal(reloaded.score(series),
                                      ensemble.score(series))
        assert_fused_equivalent(reloaded, series)

    def test_refresh_build_prepares_fused_weights(self):
        from repro.streaming import EnsembleRefresher
        ensemble = trained_ensemble(2, 2)
        refresher = EnsembleRefresher(epochs_per_model=1)
        replacement, _ = refresher.build(ensemble, make_series(2, seed=3),
                                         index=100)
        assert replacement._fused_scorer is not None
        assert_fused_equivalent(replacement, make_series(2, seed=9))


class TestChunkAutotune:
    """First-call chunk-size auto-tune (process-wide, pinning disables)."""

    @pytest.fixture(autouse=True)
    def clean_autotune_state(self):
        FusedEnsembleScorer.reset_chunk_autotune()
        yield
        FusedEnsembleScorer.reset_chunk_autotune()

    def big_ensemble(self):
        # m * n comfortably above the 2 * max(candidates) eligibility bar.
        ensemble = fabricated_ensemble(2, 5)
        series = make_series(2, length=320, seed=9)
        return ensemble, series

    def test_first_eligible_call_tunes_and_caches(self):
        ensemble, series = self.big_ensemble()
        assert FusedEnsembleScorer._tuned_chunk_rows is None
        ensemble.score(series)
        tuned = FusedEnsembleScorer._tuned_chunk_rows
        assert tuned in FusedEnsembleScorer._CHUNK_CANDIDATES
        scorer = ensemble.fused_scorer()
        assert scorer._target_rows() == tuned

    def test_tuning_runs_at_most_once(self, monkeypatch):
        ensemble, series = self.big_ensemble()
        calls = []
        original = FusedEnsembleScorer._time_chunk_candidate

        def counting(self, windows_cf, m, rows):
            calls.append(rows)
            return original(self, windows_cf, m, rows)

        monkeypatch.setattr(FusedEnsembleScorer, "_time_chunk_candidate",
                            counting)
        ensemble.score(series)
        n_first = len(calls)
        assert n_first == len(FusedEnsembleScorer._CHUNK_CANDIDATES)
        ensemble.score(series)
        fresh = fabricated_ensemble(2, 5, seed=1)
        fresh.score(series)                      # other scorers reuse it too
        assert len(calls) == n_first

    def test_pinned_target_rows_disables_tuning(self, monkeypatch):
        ensemble, series = self.big_ensemble()
        monkeypatch.setattr(FusedEnsembleScorer, "CHUNK_TARGET_ROWS", 64)
        ensemble.score(series)
        assert FusedEnsembleScorer._tuned_chunk_rows is None
        assert ensemble.fused_scorer()._target_rows() == 64

    def test_small_workload_skips_tuning(self):
        ensemble = trained_ensemble(2, 2)
        ensemble.score(make_series(2, length=64, seed=9))
        assert FusedEnsembleScorer._tuned_chunk_rows is None

    def test_timing_failure_falls_back_to_default(self, monkeypatch):
        ensemble, series = self.big_ensemble()

        def broken(self, windows_cf, m, rows):
            raise RuntimeError("boom")

        monkeypatch.setattr(FusedEnsembleScorer, "_time_chunk_candidate",
                            broken)
        scores = ensemble.score(series)          # must not raise
        assert scores.shape == (series.shape[0],)
        assert FusedEnsembleScorer._tuned_chunk_rows == \
            FusedEnsembleScorer._DEFAULT_CHUNK_ROWS

    def test_reset_allows_retuning(self):
        ensemble, series = self.big_ensemble()
        ensemble.score(series)
        assert FusedEnsembleScorer._tuned_chunk_rows is not None
        FusedEnsembleScorer.reset_chunk_autotune()
        assert FusedEnsembleScorer._tuned_chunk_rows is None
        ensemble.score(series)
        assert FusedEnsembleScorer._tuned_chunk_rows in \
            FusedEnsembleScorer._CHUNK_CANDIDATES

    def test_scores_identical_across_tuned_chunk_sizes(self):
        ensemble, series = self.big_ensemble()
        baseline = ensemble.score(series)
        for rows in FusedEnsembleScorer._CHUNK_CANDIDATES:
            FusedEnsembleScorer.reset_chunk_autotune()
            FusedEnsembleScorer._tuned_chunk_rows = rows
            ensemble.invalidate_fused()
            np.testing.assert_array_equal(ensemble.score(series), baseline)
