"""Crash-safe checkpointing: a mid-save crash never corrupts the
previous checkpoint.

Saves go to a temporary sibling directory, a ``checkpoint.json``
manifest is written last, and the directory is atomically renamed into
place (old checkpoint moved aside first, deleted last).  These tests
simulate every crash window — mid-write, between the two renames, after
publishing — and assert the loaders always see a complete checkpoint.
"""

import json
import os

import numpy as np
import pytest

from repro.core import (load_ensemble, load_fleet,
                        load_streaming_detector, save_ensemble,
                        save_fleet, save_streaming_detector,
                        verify_checkpoint)
from repro.core.persistence import (CHECKPOINT_MANIFEST_NAME,
                                    _SAVING_SUFFIX, _STALE_SUFFIX)
from repro.streaming import BurnInMAD, StreamingDetector, shared_fleet
from tests.conftest import sine_regime


@pytest.fixture
def probe():
    return sine_regime(64, start=500)


def scores_of(ensemble, probe):
    return ensemble.score(probe)


class TestAtomicEnsembleSaves:
    def test_manifest_lists_every_file(self, stream_ensemble, tmp_path):
        target = tmp_path / "ens"
        save_ensemble(stream_ensemble, str(target))
        manifest = json.loads(
            (target / CHECKPOINT_MANIFEST_NAME).read_text())
        assert manifest["kind"] == "ensemble"
        assert "manifest.json" in manifest["files"]
        assert any(name.startswith("model_")
                   for name in manifest["files"])
        assert verify_checkpoint(str(target))

    def test_verify_detects_torn_checkpoints(self, stream_ensemble,
                                             tmp_path):
        target = tmp_path / "ens"
        save_ensemble(stream_ensemble, str(target))
        os.remove(target / "model_0.npz")
        assert not verify_checkpoint(str(target))
        assert not verify_checkpoint(str(tmp_path / "nowhere"))

    def test_verify_returns_false_on_a_corrupt_manifest(
            self, stream_ensemble, tmp_path):
        """A truncated/garbled manifest is exactly the damage the
        checker exists to detect — it must report False, not raise."""
        target = tmp_path / "ens"
        save_ensemble(stream_ensemble, str(target))
        (target / CHECKPOINT_MANIFEST_NAME).write_text('{"files": [')
        assert not verify_checkpoint(str(target))
        (target / CHECKPOINT_MANIFEST_NAME).write_text('"not a dict"')
        assert not verify_checkpoint(str(target))

    def test_resave_replaces_atomically(self, stream_ensemble, tmp_path,
                                        probe):
        target = tmp_path / "ens"
        save_ensemble(stream_ensemble, str(target))
        save_ensemble(stream_ensemble, str(target))    # overwrite in place
        assert not (tmp_path / ("ens" + _SAVING_SUFFIX)).exists()
        assert not (tmp_path / ("ens" + _STALE_SUFFIX)).exists()
        np.testing.assert_array_equal(
            scores_of(load_ensemble(str(target)), probe),
            scores_of(stream_ensemble, probe))

    def test_crash_mid_write_keeps_previous_checkpoint(
            self, stream_ensemble, tmp_path, probe):
        """A save that dies while writing its temp directory leaves the
        published checkpoint untouched and loadable."""
        target = tmp_path / "ens"
        save_ensemble(stream_ensemble, str(target))
        before = scores_of(load_ensemble(str(target)), probe)

        class Unsaveable:                      # blows up mid-write
            models = ["x"]

        with pytest.raises(AttributeError):
            save_ensemble(Unsaveable(), str(target))
        np.testing.assert_array_equal(
            scores_of(load_ensemble(str(target)), probe), before)

    def test_crash_between_renames_is_recovered(self, stream_ensemble,
                                                tmp_path, probe):
        """Crash window: old checkpoint moved to .stale, new one not yet
        renamed in.  The loader transparently rolls back."""
        target = tmp_path / "ens"
        save_ensemble(stream_ensemble, str(target))
        before = scores_of(load_ensemble(str(target)), probe)
        os.rename(target, str(target) + _STALE_SUFFIX)   # simulate crash
        assert not target.exists()
        # verify_checkpoint mirrors the loaders: recover, then check.
        assert verify_checkpoint(str(target))
        assert target.exists()                 # recovered in place
        np.testing.assert_array_equal(
            scores_of(load_ensemble(str(target)), probe), before)
        assert not (tmp_path / ("ens" + _STALE_SUFFIX)).exists()

    def test_refuses_to_replace_a_non_checkpoint_directory(
            self, stream_ensemble, tmp_path):
        """Saves atomically replace the whole target directory, so a
        populated directory that is not a checkpoint must be refused —
        never silently deleted."""
        target = tmp_path / "outputs"
        target.mkdir()
        (target / "important.log").write_text("do not delete")
        with pytest.raises(ValueError, match="refusing to replace"):
            save_ensemble(stream_ensemble, str(target))
        assert (target / "important.log").read_text() == "do not delete"
        # An empty pre-existing directory is fine ...
        empty = tmp_path / "empty"
        empty.mkdir()
        save_ensemble(stream_ensemble, str(empty))
        assert verify_checkpoint(str(empty))
        # ... and so is overwriting a real checkpoint.
        save_ensemble(stream_ensemble, str(empty))

    def test_leftover_temp_directories_are_cleaned(self, stream_ensemble,
                                                   tmp_path):
        target = tmp_path / "ens"
        torn = tmp_path / ("ens" + _SAVING_SUFFIX)
        torn.mkdir()
        (torn / "garbage.npz").write_bytes(b"partial write")
        save_ensemble(stream_ensemble, str(target))
        assert not torn.exists()
        assert verify_checkpoint(str(target))


class TestAtomicStreamingSaves:
    def test_detector_checkpoint_survives_interrupted_resave(
            self, stream_ensemble, tmp_path):
        detector = StreamingDetector(stream_ensemble,
                                     calibrator=BurnInMAD(20, 8.0),
                                     history=64)
        detector.warm_up(sine_regime(7, start=353))
        detector.update_batch(sine_regime(40, start=360))
        target = tmp_path / "det"
        save_streaming_detector(detector, str(target))
        threshold = detector.threshold

        # Second save dies mid-write (unsaveable ensemble injected).
        broken = StreamingDetector(stream_ensemble, history=64)

        class Boom:
            models = ["x"]
        broken.ensemble = Boom()
        with pytest.raises(AttributeError):
            save_streaming_detector(broken, str(target))

        resumed = load_streaming_detector(str(target))
        assert resumed.threshold == threshold
        assert resumed.n_observations == detector.n_observations

    def test_detector_mid_rename_crash_recovers(self, stream_ensemble,
                                                tmp_path):
        detector = StreamingDetector(stream_ensemble, history=64)
        detector.warm_up(sine_regime(7, start=353))
        detector.update_batch(sine_regime(20, start=360))
        target = tmp_path / "det"
        save_streaming_detector(detector, str(target))
        os.rename(target, str(target) + _STALE_SUFFIX)
        resumed = load_streaming_detector(str(target))
        assert resumed.n_observations == 20


class TestAtomicFleetSaves:
    def make_fleet(self, stream_ensemble):
        fleet = shared_fleet(stream_ensemble,
                             calibrator_factory=lambda: BurnInMAD(20, 8.0),
                             history=64)
        for name in ("a", "b"):
            fleet.warm_up(name, sine_regime(7, start=353))
            fleet.update_batch(name, sine_regime(40, start=360))
        return fleet

    def test_fleet_mid_rename_crash_recovers(self, stream_ensemble,
                                             tmp_path):
        fleet = self.make_fleet(stream_ensemble)
        target = tmp_path / "fleet"
        save_fleet(fleet, str(target))
        os.rename(target, str(target) + _STALE_SUFFIX)
        resumed = load_fleet(str(target))
        assert resumed.names == ["a", "b"]
        tail = sine_regime(10, start=400)
        assert resumed.update_batch("a", tail) == \
            fleet.update_batch("a", tail)

    def test_fleet_crash_mid_write_keeps_previous(self, stream_ensemble,
                                                  tmp_path):
        fleet = self.make_fleet(stream_ensemble)
        target = tmp_path / "fleet"
        save_fleet(fleet, str(target))

        class BrokenFleet:
            names = ["a"]

            def detector(self, name):
                raise RuntimeError("synthetic crash mid-save")

        with pytest.raises(RuntimeError, match="synthetic"):
            save_fleet(BrokenFleet(), str(target))
        resumed = load_fleet(str(target))
        assert resumed.names == ["a", "b"]
        assert verify_checkpoint(str(target))
        manifest = json.loads(
            (target / CHECKPOINT_MANIFEST_NAME).read_text())
        assert manifest["kind"] == "fleet"
