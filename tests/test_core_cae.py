"""Unit tests for the CAE architecture: embedding, coders, attention, model."""

import numpy as np
import pytest

from repro.core import CAE, CAEConfig, GlobalAttention, InputEmbedding
from repro.core.layers import DecoderLayer, Encoder, EncoderLayer, GLUConv
from repro.nn import Adam, Tensor
from repro.nn.functional import mse_loss


@pytest.fixture
def rng():
    return np.random.default_rng(33)


@pytest.fixture
def config():
    return CAEConfig(input_dim=3, embed_dim=16, window=8, n_layers=2,
                     kernel_size=3)


class TestConfigValidation:
    def test_valid(self):
        CAEConfig(input_dim=2)

    @pytest.mark.parametrize("kwargs", [
        {"input_dim": 0}, {"input_dim": 2, "embed_dim": 0},
        {"input_dim": 2, "window": 1}, {"input_dim": 2, "n_layers": 0},
        {"input_dim": 2, "kernel_size": 4},
        {"input_dim": 2, "kernel_size": -1},
        {"input_dim": 2, "reconstruct": "bogus"},
        {"input_dim": 2, "position_mode": "bogus"},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            CAEConfig(**kwargs)

    def test_output_dim(self):
        assert CAEConfig(input_dim=5).output_dim == 5
        assert CAEConfig(input_dim=5, embed_dim=7,
                         reconstruct="embedding").output_dim == 7


class TestEmbedding:
    def test_output_shape(self, config, rng):
        embedding = InputEmbedding(config, rng)
        out = embedding(Tensor(rng.standard_normal((5, 8, 3))))
        assert out.shape == (5, 8, 16)

    def test_positions_are_distinct(self, config, rng):
        embedding = InputEmbedding(config, rng)
        positions = embedding.position_vectors().data
        # No two positions should collide (information would be lost).
        for i in range(positions.shape[0]):
            for j in range(i + 1, positions.shape[0]):
                assert not np.allclose(positions[i], positions[j])

    def test_table_mode(self, rng):
        config = CAEConfig(input_dim=3, embed_dim=16, window=8,
                           position_mode="table")
        embedding = InputEmbedding(config, rng)
        assert embedding.position_vectors().shape == (8, 16)

    def test_position_added_to_values(self, config, rng):
        """Same observation at different positions embeds differently."""
        embedding = InputEmbedding(config, rng)
        windows = np.zeros((1, 8, 3))
        out = embedding(Tensor(windows)).data
        assert not np.allclose(out[0, 0], out[0, 5])

    def test_rejects_wrong_shapes(self, config, rng):
        embedding = InputEmbedding(config, rng)
        with pytest.raises(ValueError):
            embedding(Tensor(np.zeros((5, 8))))          # 2-D
        with pytest.raises(ValueError):
            embedding(Tensor(np.zeros((5, 9, 3))))       # wrong window
        with pytest.raises(ValueError):
            embedding(Tensor(np.zeros((5, 8, 4))))       # wrong dims


class TestLayers:
    def test_glu_gates_between_zero_and_value(self, rng):
        glu = GLUConv(4, 3, "same", rng)
        out = glu(Tensor(rng.standard_normal((2, 4, 6))))
        assert out.shape == (2, 4, 6)

    def test_encoder_layer_preserves_shape(self, rng):
        layer = EncoderLayer(4, 3, rng)
        out = layer(Tensor(rng.standard_normal((2, 4, 6))))
        assert out.shape == (2, 4, 6)

    def test_encoder_returns_all_layer_states(self, rng):
        encoder = Encoder(4, 3, 3, rng)
        states = encoder(Tensor(rng.standard_normal((2, 4, 6))))
        assert len(states) == 3
        assert all(s.shape == (2, 4, 6) for s in states)

    def test_skip_connection_present(self, rng):
        """Zeroing the conv weights must reduce the layer to identity."""
        layer = EncoderLayer(4, 3, rng, use_glu=False)
        layer.conv.weight.data[...] = 0.0
        layer.conv.bias.data[...] = 0.0
        x = rng.standard_normal((1, 4, 5))
        out = layer(Tensor(x))
        np.testing.assert_allclose(out.data, x)   # relu(0) + x == x

    def test_decoder_layer_uses_encoder_state(self, rng):
        layer = DecoderLayer(4, 3, rng)
        x = Tensor(rng.standard_normal((2, 4, 6)))
        e1 = Tensor(rng.standard_normal((2, 4, 6)))
        e2 = Tensor(rng.standard_normal((2, 4, 6)))
        assert not np.allclose(layer(x, e1).data, layer(x, e2).data)

    def test_decoder_causality(self, rng):
        """Future inputs must not affect earlier decoder outputs."""
        layer = DecoderLayer(3, 3, rng)
        x1 = rng.standard_normal((1, 3, 10))
        x2 = x1.copy()
        x2[:, :, 6:] += 1.0
        zeros = Tensor(np.zeros((1, 3, 10)))
        y1 = layer(Tensor(x1), zeros).data
        y2 = layer(Tensor(x2), zeros).data
        np.testing.assert_allclose(y1[:, :, :6], y2[:, :, :6], atol=1e-12)


class TestAttention:
    def test_weights_are_probabilities(self, rng):
        attention = GlobalAttention(4, rng)
        d = Tensor(rng.standard_normal((2, 4, 6)))
        e = Tensor(rng.standard_normal((2, 4, 6)))
        updated, weights = attention(d, e)
        assert updated.shape == (2, 4, 6)
        assert weights.shape == (2, 6, 6)
        np.testing.assert_allclose(weights.data.sum(axis=-1), 1.0,
                                   atol=1e-10)
        assert np.all(weights.data >= 0)

    def test_context_changes_decoder_state(self, rng):
        attention = GlobalAttention(4, rng)
        d = Tensor(rng.standard_normal((1, 4, 5)))
        e = Tensor(rng.standard_normal((1, 4, 5)))
        updated, _ = attention(d, e)
        assert not np.allclose(updated.data, d.data)


class TestCAEModel:
    def test_forward_shape_observation_mode(self, config, rng):
        model = CAE(config, rng)
        out = model(Tensor(rng.standard_normal((4, 8, 3))))
        assert out.shape == (4, 8, 3)

    def test_forward_shape_embedding_mode(self, rng):
        config = CAEConfig(input_dim=3, embed_dim=16, window=8, n_layers=2,
                           reconstruct="embedding")
        model = CAE(config, rng)
        out = model(Tensor(rng.standard_normal((4, 8, 3))))
        assert out.shape == (4, 8, 16)

    def test_no_attention_variant(self, rng):
        config = CAEConfig(input_dim=3, embed_dim=16, window=8, n_layers=2,
                           use_attention=False)
        model = CAE(config, rng)
        assert model(Tensor(rng.standard_normal((2, 8, 3)))).shape == \
            (2, 8, 3)
        assert model.attention_maps(rng.standard_normal((2, 8, 3))) == []

    def test_no_glu_variant(self, rng):
        config = CAEConfig(input_dim=3, embed_dim=16, window=8, n_layers=2,
                           use_glu=False)
        model = CAE(config, rng)
        assert model(Tensor(rng.standard_normal((2, 8, 3)))).shape == \
            (2, 8, 3)

    def test_window_scores_shape_and_nonnegative(self, config, rng):
        model = CAE(config, rng)
        windows = rng.standard_normal((10, 8, 3))
        scores = model.window_scores(windows)
        assert scores.shape == (10, 8)
        assert np.all(scores >= 0)

    def test_training_reduces_loss(self, config, rng):
        model = CAE(config, rng)
        windows = Tensor(rng.standard_normal((32, 8, 3)) * 0.5)
        optimizer = Adam(model.parameters(), lr=5e-3)
        initial = None
        for step in range(30):
            optimizer.zero_grad()
            loss = mse_loss(model(windows),
                            model.reconstruction_target(windows))
            loss.backward()
            optimizer.step()
            if initial is None:
                initial = float(loss.data)
        assert float(loss.data) < 0.5 * initial

    def test_attention_maps_per_layer(self, config, rng):
        model = CAE(config, rng)
        maps = model.attention_maps(rng.standard_normal((3, 8, 3)))
        assert len(maps) == config.n_layers
        assert all(m.shape == (3, 8, 8) for m in maps)

    def test_deterministic_given_seed(self, config):
        a = CAE(config, np.random.default_rng(5))
        b = CAE(config, np.random.default_rng(5))
        x = Tensor(np.random.default_rng(0).standard_normal((2, 8, 3)))
        np.testing.assert_array_equal(a(x).data, b(x).data)

    def test_different_seeds_differ(self, config):
        a = CAE(config, np.random.default_rng(5))
        b = CAE(config, np.random.default_rng(6))
        x = Tensor(np.random.default_rng(0).standard_normal((2, 8, 3)))
        assert not np.allclose(a(x).data, b(x).data)

    def test_embedding_target_is_detached(self, rng):
        config = CAEConfig(input_dim=3, embed_dim=16, window=8,
                           reconstruct="embedding")
        model = CAE(config, rng)
        target = model.reconstruction_target(
            Tensor(rng.standard_normal((2, 8, 3))))
        assert not target.requires_grad
