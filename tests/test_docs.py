"""Documentation stays true: intra-repo links resolve, doctests run.

Ties the docs into tier-1: the CI docs lane runs the same link checker
(``tools/check_links.py``) and ``pytest --doctest-modules``; these tests
keep a plain local ``pytest`` run equally honest.
"""

import doctest
import importlib
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Every module whose docstrings carry runnable examples (the CI doctest
# lane runs --doctest-modules over the same set).
DOCTESTED_MODULES = [
    "repro.metrics.events",
    "repro.obs",
    "repro.serving.protocol",
    "repro.obs.exporters",
    "repro.obs.registry",
    "repro.obs.tracing",
    "repro.streaming.buffer",
    "repro.streaming.calibration",
    "repro.streaming.coordinator",
    "repro.streaming.drift",
    "repro.streaming.engine",
    "repro.streaming.multi",
    "repro.streaming.refresh",
    "repro.streaming.worker",
]

MARKDOWN_FILES = ["README.md", "PAPER.md", "ROADMAP.md", "CHANGES.md",
                  "docs/architecture.md", "docs/checkpoints.md",
                  "docs/observability.md", "docs/performance.md",
                  "docs/serving.md"]


class TestIntraRepoLinks:
    @pytest.mark.parametrize("name", MARKDOWN_FILES)
    def test_markdown_links_resolve(self, name):
        sys.path.insert(0, str(REPO_ROOT / "tools"))
        try:
            from check_links import broken_links
        finally:
            sys.path.pop(0)
        path = REPO_ROOT / name
        assert path.exists(), f"{name} is missing"
        failures = broken_links(path)
        assert failures == [], f"broken links in {name}: {failures}"

    def test_required_documentation_exists(self):
        assert (REPO_ROOT / "README.md").exists()
        assert (REPO_ROOT / "docs" / "architecture.md").exists()
        assert (REPO_ROOT / "docs" / "checkpoints.md").exists()

    def test_readme_covers_the_required_sections(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for needle in ("Install", "Quickstart", "repro.experiments",
                       "shared_fleet", "Benchmark index",
                       "Repository map", "Observability",
                       "repro.serving", "DetectionServer"):
            assert needle in readme, f"README lacks {needle!r}"


class TestClockDiscipline:
    """Durations are measured with the monotonic ``time.perf_counter``,
    never the wall clock — ``time.time()`` jumps under NTP slews and
    DST, which corrupts benchmark numbers and latency histograms.  The
    audit allowlists the one intentional wall-clock use: a span's
    *start timestamp* in ``obs/tracing.py`` (an epoch anchor for log
    correlation; the span's duration uses ``perf_counter``)."""

    ALLOWED_WALL_CLOCK = {"src/repro/obs/tracing.py"}

    def test_no_wall_clock_durations_outside_the_allowlist(self):
        offenders = []
        for area in ("src", "tools", "benchmarks"):
            root = REPO_ROOT / area
            if not root.exists():
                continue
            for path in root.rglob("*.py"):
                relative = str(path.relative_to(REPO_ROOT))
                if relative in self.ALLOWED_WALL_CLOCK:
                    continue
                if "time.time(" in path.read_text():
                    offenders.append(relative)
        assert offenders == [], (
            f"wall-clock time.time() found in {offenders}; use "
            f"time.perf_counter() for durations (or extend the "
            f"allowlist for a genuine epoch timestamp)")


class TestDoctests:
    @pytest.mark.parametrize("module_name", DOCTESTED_MODULES)
    def test_module_doctests_pass(self, module_name):
        module = importlib.import_module(module_name)
        result = doctest.testmod(module, verbose=False)
        assert result.failed == 0, (
            f"{result.failed} doctest failure(s) in {module_name}")
        assert result.attempted > 0, (
            f"{module_name} is in DOCTESTED_MODULES but carries no "
            f"doctests")

    def test_quickstart_snippet_runs_as_written(self):
        """The README's five-line quickstart, executed verbatim-ish on a
        scaled-down dataset so it stays test-budget fast."""
        from repro.core import CAEConfig, CAEEnsemble, EnsembleConfig
        from repro.datasets import load_dataset

        dataset = load_dataset("ecg", scale=0.1)
        model = CAEEnsemble(
            CAEConfig(input_dim=dataset.dims, embed_dim=8, n_layers=1),
            EnsembleConfig(n_models=2, epochs_per_model=1,
                           max_training_windows=64))
        scores = model.fit(dataset.train).score(dataset.test)
        assert scores.shape[0] == dataset.test.shape[0]
