"""Setup shim: enables legacy editable installs (`pip install -e .`) in
environments without the `wheel` package (PEP 660 builds need bdist_wheel).
All project metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
