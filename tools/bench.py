#!/usr/bin/env python
"""Inference / streaming throughput bench harness (machine-readable).

Runs the Table 8-style scoring benches on a large ensemble and emits the
perf trajectory as JSON, so speedups (and regressions) are visible and
diffable across commits:

* ``BENCH_inference.json`` — single-observation (``score_window``) and
  micro-batch (``score_windows_last``) latency, fused engine vs the
  per-model loop, across batch sizes;
* ``BENCH_streaming.json`` — end-to-end ``StreamingDetector.update_batch``
  throughput (observations/second), fused vs unfused;
* ``BENCH_training.json`` (``--training``) — full ``CAEEnsemble.fit``
  wall-clock on a Table 7-style config, fused batched trainer vs the
  per-module reference loop, plus the loss-trajectory deviation between
  the two (the equivalence contract of ``docs/performance.md``);
* ``BENCH_fleet.json`` (``--fleet``) — single-process ``StreamFleet``
  vs the multi-process ``ShardedFleet`` on the same replay workload,
  across shard counts (the process-model scaling table of
  ``docs/performance.md``);
* ``BENCH_serving.json`` (``--serving``) — the TCP front-end under
  100+ concurrent streams, cross-stream coalesced scoring vs
  per-stream serial calls: observations/second, request p50/p99 and
  the fused-batch depth (the serving table of ``docs/performance.md``
  and ``docs/serving.md``).

The ensemble's basic models are random-initialised rather than trained:
inference cost is independent of the weight values, and fabricating the
models keeps a 40-model bench in CPU seconds.  Scores still go through
the full scaler -> forward -> aggregation path.

Usage::

    PYTHONPATH=src python tools/bench.py [--models 40] [--quick]
        [--out benchmarks/output]

``--quick`` shrinks rounds for a CI smoke lane; the emitted JSON marks
the mode so trajectories are compared like for like.
"""

from __future__ import annotations

import argparse
import contextlib
import datetime
import json
import os
import platform
import subprocess
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir,
                                "src"))

from repro.core import CAEConfig, CAEEnsemble, EnsembleConfig   # noqa: E402
from repro.core.cae import CAE                                   # noqa: E402
from repro.datasets.preprocess import StandardScaler             # noqa: E402
from repro.obs import (MetricsRegistry, use_registry,            # noqa: E402
                       write_snapshot)
from repro.streaming import StreamingDetector                    # noqa: E402


def git_commit() -> str:
    """Short hash of the benched tree, ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"

WINDOW = 16
DIMS = 3


def make_series(length: int) -> np.ndarray:
    rng = np.random.default_rng(0)
    t = np.arange(length)
    series = np.stack([np.sin(2 * np.pi * t / 31),
                       np.cos(2 * np.pi * t / 47),
                       np.sin(2 * np.pi * t / 19)], axis=1)
    return series + 0.05 * rng.standard_normal((length, DIMS))


def fabricate_ensemble(n_models: int, embed_dim: int, n_layers: int,
                       series: np.ndarray) -> CAEEnsemble:
    config = CAEConfig(input_dim=DIMS, embed_dim=embed_dim, window=WINDOW,
                       n_layers=n_layers)
    ensemble = CAEEnsemble(config, EnsembleConfig(n_models=n_models,
                                                  seed=0))
    root = np.random.default_rng(0)
    ensemble.models = [CAE(config, np.random.default_rng(
        root.integers(2 ** 32))) for _ in range(n_models)]
    ensemble.scaler = StandardScaler().fit(series)
    return ensemble


def best_of(fn, rounds: int, inner: int) -> float:
    """Best-of-rounds mean seconds per call (robust to machine noise)."""
    fn()                                    # warm-up: buffers, caches
    best = float("inf")
    for _ in range(rounds):
        tick = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - tick) / inner)
    return best


def bench_inference(ensemble: CAEEnsemble, series: np.ndarray,
                    batch_sizes, rounds: int) -> dict:
    results = {}
    window = series[:WINDOW]
    unfused = best_of(lambda: ensemble.score_window(window, fused=False),
                      rounds, 1)
    fused = best_of(lambda: ensemble.score_window(window, fused=True),
                    rounds, 10)
    results["single_observation"] = {
        "unfused_ms": unfused * 1e3, "fused_ms": fused * 1e3,
        "speedup": unfused / fused,
    }
    results["micro_batch"] = {}
    for batch in batch_sizes:
        windows = np.stack([series[i:i + WINDOW] for i in range(batch)])
        unfused = best_of(
            lambda: ensemble.score_windows_last(windows, fused=False),
            max(2, rounds // 2), 1)
        fused = best_of(
            lambda: ensemble.score_windows_last(windows, fused=True),
            rounds, 2)
        results["micro_batch"][str(batch)] = {
            "unfused_ms": unfused * 1e3, "fused_ms": fused * 1e3,
            "speedup": unfused / fused,
        }
    return results


def bench_streaming(ensemble: CAEEnsemble, train: np.ndarray,
                    stream: np.ndarray, micro_batch: int,
                    rounds: int) -> dict:
    results = {}
    for label, fused in (("fused", True), ("unfused", False)):
        ensemble.fused_inference = fused
        seconds = float("inf")
        for _ in range(rounds):
            detector = StreamingDetector(ensemble, history=WINDOW)
            detector.warm_up(train[-(WINDOW - 1):])
            tick = time.perf_counter()
            for start in range(0, len(stream), micro_batch):
                detector.update_batch(stream[start:start + micro_batch])
            seconds = min(seconds, time.perf_counter() - tick)
        results[label] = {
            "seconds": seconds,
            "observations_per_second": len(stream) / seconds,
            "ms_per_observation": seconds / len(stream) * 1e3,
        }
    ensemble.fused_inference = True
    results["speedup"] = results["fused"]["observations_per_second"] / \
        results["unfused"]["observations_per_second"]
    results["micro_batch"] = micro_batch
    results["stream_length"] = len(stream)
    return results


def bench_training(embed_dim: int, n_layers: int, rounds: int,
                   quick: bool) -> dict:
    """Fused vs reference ``fit`` wall-clock on a Table 7-style config.

    Unlike the inference benches the models must actually train, so the
    config mirrors the standard bench budget of
    :mod:`repro.experiments.runner` (embed 32, 2 layers) scaled to a few
    CPU-seconds per fit.  Both paths consume identical RNG streams; the
    loss-trajectory deviation between them is reported alongside the
    speedup.
    """
    cae = CAEConfig(input_dim=DIMS, embed_dim=embed_dim, window=WINDOW,
                    n_layers=n_layers)
    base = dict(n_models=3 if quick else 5,
                epochs_per_model=2 if quick else 3,
                batch_size=64, seed=3,
                max_training_windows=512 if quick else 1024)
    series = make_series(2048)

    def fit(fused: bool) -> CAEEnsemble:
        config = EnsembleConfig(**base, fused_training=fused)
        return CAEEnsemble(cae, config).fit(series)

    reference = fused = float("inf")
    for _ in range(rounds):
        tick = time.perf_counter()
        ref_ensemble = fit(False)
        reference = min(reference, time.perf_counter() - tick)
        tick = time.perf_counter()
        fused_ensemble = fit(True)
        fused = min(fused, time.perf_counter() - tick)

    ref_losses = np.array([r.loss for r in ref_ensemble.history])
    fused_losses = np.array([r.loss for r in fused_ensemble.history])
    deviation = float(np.max(np.abs(ref_losses - fused_losses) /
                             np.maximum(np.abs(ref_losses), 1e-12)))
    return {
        "config": dict(base, embed_dim=embed_dim, n_layers=n_layers,
                       window=WINDOW, input_dim=DIMS),
        "reference_seconds": reference,
        "fused_seconds": fused,
        "speedup": reference / fused,
        "fused_training_dtype": "float32",
        "loss_trajectory_max_rel_deviation": deviation,
        "epochs_recorded": len(ref_losses),
    }


def bench_fleet(n_streams: int, segment: int, micro_batch: int,
                rounds: int, shard_counts) -> dict:
    """Single-process ``StreamFleet`` vs the multi-process
    :class:`~repro.runtime.fleet.ShardedFleet` on one replay workload.

    Every configuration replays the same ``n_streams`` x ``segment``
    stream matrix through ``update_many``.  The model is kept small
    (8 basic models) on purpose: fleet scaling is about process/IPC
    overhead and core utilisation, not kernel speed, and a small model
    makes the per-observation IPC cost *visible* instead of hiding it
    under compute.  Numbers from a single-core runner therefore show
    sharding as pure overhead — which is the honest baseline; the
    speedup column only turns favourable with cores to spare.
    """
    from repro.streaming import shared_fleet, sharded_fleet

    series = make_series(2048)
    ensemble = fabricate_ensemble(8, 16, 2, series)
    streams = {f"stream-{i:02d}": make_series(2048 + segment)[-segment:]
               for i in range(n_streams)}
    warm = series[-(WINDOW - 1):]

    def replay(fleet) -> float:
        for name in streams:
            fleet.warm_up(name, warm)
        tick = time.perf_counter()
        for start in range(0, segment, micro_batch):
            fleet.update_many({name: chunk[start:start + micro_batch]
                               for name, chunk in streams.items()})
        return time.perf_counter() - tick

    total = n_streams * segment
    results = {"n_streams": n_streams, "segment": segment,
               "micro_batch": micro_batch,
               "total_observations": total, "n_models": 8,
               "configs": {}}

    seconds = float("inf")
    for _ in range(rounds):
        seconds = min(seconds, replay(shared_fleet(ensemble,
                                                   history=WINDOW)))
    results["configs"]["inline"] = {
        "seconds": seconds,
        "observations_per_second": total / seconds,
    }

    for n_shards in shard_counts:
        seconds = float("inf")
        for _ in range(rounds):
            fleet = sharded_fleet(ensemble, n_shards=n_shards,
                                  history=WINDOW)
            try:
                seconds = min(seconds, replay(fleet))
            finally:
                fleet.shutdown()
        results["configs"][f"sharded-{n_shards}"] = {
            "n_shards": n_shards,
            "seconds": seconds,
            "observations_per_second": total / seconds,
            "speedup_vs_inline":
                results["configs"]["inline"]["seconds"] / seconds,
        }
    return results


def bench_serving(n_streams: int, ticks: int, rounds: int) -> dict:
    """The networked front-end: coalesced vs per-stream serial scoring.

    ``n_streams`` concurrent clients (one TCP connection each) stream
    ``ticks`` single-observation updates through a
    :class:`~repro.serving.DetectionServer` over a shared-ensemble
    fleet.  The ``coalesced`` config fuses concurrent cross-stream
    updates into batched scoring calls; the ``serial`` config
    (``coalesce=False``) scores every request in its own
    ``update_batch`` call — the baseline the speedup column is against.
    Requests per stream are sequential (a client awaits each reply), so
    concurrency — and therefore fused batch depth — comes entirely from
    the stream count, exactly like production traffic.  Latency
    quantiles come from the server's own ``repro_serving_request
    _seconds`` histogram; mean fused-batch depth from
    ``repro_fleet_coalesce_size``.
    """
    import asyncio

    from repro.serving import DetectionServer, ServingClient
    from repro.streaming import shared_fleet

    series = make_series(2048)
    ensemble = fabricate_ensemble(8, 16, 2, series)
    warm = series[-(WINDOW - 1):]
    traffic = make_series(2048 + ticks)[-ticks:]
    names = [f"stream-{i:03d}" for i in range(n_streams)]

    async def run(coalesce: bool, registry: MetricsRegistry) -> float:
        fleet = shared_fleet(ensemble, history=WINDOW)
        for name in names:
            fleet.warm_up(name, warm)
        server = DetectionServer(fleet, coalesce=coalesce,
                                 registry=registry)
        await server.start()
        clients = [await ServingClient.connect("127.0.0.1", server.port)
                   for _ in names]

        async def drive(client, name):
            for row in traffic:
                reply = await client.update(name, row)
                assert reply["status"] == "ok", reply

        tick = time.perf_counter()
        await asyncio.gather(*[drive(client, name)
                               for client, name in zip(clients, names)])
        seconds = time.perf_counter() - tick
        for client in clients:
            await client.close()
        await server.stop()
        return seconds

    total = n_streams * ticks
    results = {"n_streams": n_streams, "ticks_per_stream": ticks,
               "total_observations": total, "n_models": 8,
               "configs": {}}
    for label, coalesce in (("serial", False), ("coalesced", True)):
        seconds = float("inf")
        registry = None
        for _ in range(rounds):
            candidate = MetricsRegistry()
            # Installed as the process default too: the fleet's
            # coalesce-size histogram is recorded by StreamFleet, not
            # the server, and must land in the same registry.
            with use_registry(candidate):
                round_seconds = asyncio.run(run(coalesce, candidate))
            if round_seconds < seconds:
                seconds, registry = round_seconds, candidate
        latency = registry.histogram("repro_serving_request_seconds")
        fused = registry.histogram("repro_fleet_coalesce_size", low=1.0,
                                   high=1e4, buckets_per_decade=4)
        results["configs"][label] = {
            "seconds": seconds,
            "observations_per_second": total / seconds,
            "request_p50_ms": (latency.quantile(0.50) or 0.0) * 1e3,
            "request_p99_ms": (latency.quantile(0.99) or 0.0) * 1e3,
            "mean_fused_batch": fused.sum / fused.count
            if fused.count else None,
            "max_fused_batch": fused.max if fused.count else None,
        }
    results["speedup_vs_serial"] = \
        results["configs"]["coalesced"]["observations_per_second"] / \
        results["configs"]["serial"]["observations_per_second"]
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--models", type=int, default=40)
    parser.add_argument("--embed-dim", type=int, default=32)
    parser.add_argument("--layers", type=int, default=2)
    parser.add_argument("--micro-batch", type=int, default=64)
    parser.add_argument("--stream-length", type=int, default=512)
    parser.add_argument("--quick", action="store_true",
                        help="fewer rounds / shorter stream (CI smoke)")
    parser.add_argument("--training", action="store_true",
                        help="also bench fused vs reference ensemble "
                             "training and emit BENCH_training.json")
    parser.add_argument("--fleet", action="store_true",
                        help="also bench the single-process StreamFleet "
                             "vs the multi-process ShardedFleet and emit "
                             "BENCH_fleet.json")
    parser.add_argument("--serving", action="store_true",
                        help="also bench the TCP serving front-end, "
                             "coalesced vs per-stream serial scoring, "
                             "and emit BENCH_serving.json")
    parser.add_argument("--emit-telemetry", action="store_true",
                        help="run the benches against a fresh metrics "
                             "registry and dump its JSON snapshot as "
                             "BENCH_telemetry.json next to the results")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), os.pardir, "benchmarks", "output"))
    args = parser.parse_args(argv)

    rounds = 3 if args.quick else 7
    stream_length = min(args.stream_length,
                        128 if args.quick else args.stream_length)
    batch_sizes = (16, args.micro_batch) if args.quick \
        else (8, 16, 32, args.micro_batch)

    series = make_series(4096)
    ensemble = fabricate_ensemble(args.models, args.embed_dim, args.layers,
                                  series)
    meta = {
        "commit": git_commit(),
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "mode": "quick" if args.quick else "full",
        "n_models": args.models,
        "embed_dim": args.embed_dim,
        "n_layers": args.layers,
        "window": WINDOW,
        "input_dim": DIMS,
        "inference_dtype": "float32",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }

    print(f"bench: {args.models} basic models, embed {args.embed_dim}, "
          f"{args.layers} layers, window {WINDOW} "
          f"({meta['mode']} mode)")

    # A fresh registry (installed process-wide for the duration of the
    # benches) keeps the telemetry snapshot scoped to this run; without
    # the flag the benches run against whatever registry is already the
    # default (normally the process one — near-zero cost either way).
    registry = MetricsRegistry() if args.emit_telemetry else None
    stack = contextlib.ExitStack()
    if registry is not None:
        stack.enter_context(use_registry(registry))

    with stack:
        inference = bench_inference(ensemble, series, batch_sizes, rounds)
        single = inference["single_observation"]
        print(f"  single-observation: unfused {single['unfused_ms']:8.2f} "
              f"ms  fused {single['fused_ms']:6.2f} ms  "
              f"-> {single['speedup']:.1f}x")
        for batch, numbers in inference["micro_batch"].items():
            print(f"  micro-batch B={batch:>3}: unfused "
                  f"{numbers['unfused_ms']:8.2f} ms  "
                  f"fused {numbers['fused_ms']:6.2f} ms  "
                  f"-> {numbers['speedup']:.1f}x")

        stream = make_series(4096 + stream_length)[-stream_length:]
        streaming = bench_streaming(ensemble, series, stream,
                                    args.micro_batch, max(2, rounds // 2))
        training = None
        if args.training:
            training = bench_training(args.embed_dim, args.layers,
                                      2 if args.quick else 3, args.quick)
        fleet = None
        if args.fleet:
            fleet = bench_fleet(
                n_streams=4 if args.quick else 8,
                segment=128 if args.quick else 512,
                micro_batch=args.micro_batch,
                rounds=2 if args.quick else 3,
                shard_counts=(1, 2) if args.quick else (1, 2, 4))
        serving = None
        if args.serving:
            # The acceptance workload: >= 100 concurrent streams in
            # both modes (quick only trims the per-stream tick count).
            serving = bench_serving(
                n_streams=100 if args.quick else 128,
                ticks=6 if args.quick else 24,
                rounds=1 if args.quick else 2)
    print(f"  streaming update_batch({args.micro_batch}): "
          f"unfused {streaming['unfused']['observations_per_second']:7.0f}"
          f" obs/s  fused "
          f"{streaming['fused']['observations_per_second']:7.0f} obs/s  "
          f"-> {streaming['speedup']:.1f}x")
    if fleet is not None:
        for label, numbers in fleet["configs"].items():
            suffix = "" if "speedup_vs_inline" not in numbers else \
                f"  -> {numbers['speedup_vs_inline']:.2f}x vs inline"
            print(f"  fleet {label:>10}: "
                  f"{numbers['observations_per_second']:7.0f} obs/s"
                  f"{suffix}")
    if serving is not None:
        for label, numbers in serving["configs"].items():
            depth = numbers["mean_fused_batch"]
            print(f"  serving {label:>9}: "
                  f"{numbers['observations_per_second']:7.0f} obs/s  "
                  f"p99 {numbers['request_p99_ms']:7.2f} ms"
                  + (f"  mean fused batch {depth:.1f}"
                     if depth is not None else ""))
        print(f"  serving coalesced vs serial: "
              f"{serving['speedup_vs_serial']:.2f}x")
    if training is not None:
        print(f"  training fit: reference "
              f"{training['reference_seconds']:6.2f} s  fused "
              f"{training['fused_seconds']:6.2f} s  "
              f"-> {training['speedup']:.1f}x  "
              f"(loss dev {training['loss_trajectory_max_rel_deviation']:.1e})")

    os.makedirs(args.out, exist_ok=True)
    outputs = [("BENCH_inference.json", inference),
               ("BENCH_streaming.json", streaming)]
    if training is not None:
        outputs.append(("BENCH_training.json", training))
    if fleet is not None:
        outputs.append(("BENCH_fleet.json", fleet))
    if serving is not None:
        outputs.append(("BENCH_serving.json", serving))
    for name, payload in outputs:
        path = os.path.join(args.out, name)
        with open(path, "w") as handle:
            json.dump({"meta": meta, "results": payload}, handle, indent=2)
            handle.write("\n")
        print(f"  wrote {os.path.relpath(path)}")
    if registry is not None:
        path = os.path.join(args.out, "BENCH_telemetry.json")
        write_snapshot(registry, path, extra_meta=meta)
        print(f"  wrote {os.path.relpath(path)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
