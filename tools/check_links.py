#!/usr/bin/env python3
"""Fail on broken intra-repo links in markdown files.

Scans ``[text](target)`` links; targets that are not external
(``http(s)://``, ``mailto:``) or pure anchors must resolve to an
existing file or directory relative to the markdown file's location
(anchors are stripped before the check).

Usage::

    python tools/check_links.py README.md docs/*.md

Exits non-zero listing every broken link.  Used by the CI docs lane and
``tests/test_docs.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# [text](target) — skips images' leading '!', tolerates titles after a
# space: [t](path "title").  Inline code spans are stripped first so
# documentation *about* link syntax does not trip the checker.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
CODE_SPAN = re.compile(r"`[^`]*`")
CODE_BLOCK = re.compile(r"```.*?```", re.DOTALL)
EXTERNAL = ("http://", "https://", "mailto:")


def broken_links(markdown_path: Path) -> list:
    """(target, reason) for every intra-repo link that does not resolve."""
    text = markdown_path.read_text()
    text = CODE_BLOCK.sub("", text)
    text = CODE_SPAN.sub("", text)
    failures = []
    for target in LINK.findall(text):
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (markdown_path.parent / path).resolve()
        if not resolved.exists():
            failures.append((target, f"no such file: {resolved}"))
    return failures


def main(argv) -> int:
    if not argv:
        print("usage: check_links.py FILE.md [FILE.md ...]",
              file=sys.stderr)
        return 2
    total = 0
    for name in argv:
        path = Path(name)
        if not path.exists():
            print(f"{name}: file not found", file=sys.stderr)
            total += 1
            continue
        for target, reason in broken_links(path):
            print(f"{name}: broken link ({target}) — {reason}",
                  file=sys.stderr)
            total += 1
    if total:
        print(f"{total} broken link(s)", file=sys.stderr)
        return 1
    print(f"links ok across {len(argv)} file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
