"""Regenerate the committed fleet-checkpoint fixtures under tests/data/.

The fixtures are the *back-compat regression guard*: tests load them on
every run, so a format change that breaks reading old checkpoints fails
CI instead of failing a production resume.  Run this only when
intentionally minting a fixture for a NEW format version — never
regenerate the old ones (that would defeat the guard):

    PYTHONPATH=src:tests python tools/make_checkpoint_fixtures.py

``fleet_checkpoint_v2`` is a genuine ``save_fleet`` checkpoint (current
format).  ``fleet_checkpoint_v1`` is the same fleet downgraded to the
v1 schema: ``format_version: 1`` and no ``coordinator`` entry — exactly
what a pre-coordinator writer produced.
"""

import json
import os
import shutil
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))
sys.path.insert(0, os.path.join(REPO, "tests"))

from conftest import fabricate_ensemble, sine_regime      # noqa: E402
from repro.core.persistence import save_fleet             # noqa: E402
from repro.streaming import shared_fleet                  # noqa: E402


def main() -> None:
    data_dir = os.path.join(REPO, "tests", "data")
    ensemble = fabricate_ensemble(seed=42)
    fleet = shared_fleet(ensemble, history=64, refresh_mode="async",
                         max_concurrent_builds=1)
    for name in ("alpha", "beta"):
        fleet.warm_up(name, sine_regime(24, seed=42))
        fleet.update_batch(name, sine_regime(4, start=24, seed=42))

    v2 = os.path.join(data_dir, "fleet_checkpoint_v2")
    shutil.rmtree(v2, ignore_errors=True)
    save_fleet(fleet, v2)

    v1 = os.path.join(data_dir, "fleet_checkpoint_v1")
    shutil.rmtree(v1, ignore_errors=True)
    shutil.copytree(v2, v1)
    state_path = os.path.join(v1, "fleet.json")
    with open(state_path) as handle:
        payload = json.load(handle)
    payload["format_version"] = 1
    payload.pop("coordinator", None)
    with open(state_path, "w") as handle:
        json.dump(payload, handle, indent=2)
    for version, path in (("v1", v1), ("v2", v2)):
        size = sum(os.path.getsize(os.path.join(root, name))
                   for root, _, names in os.walk(path) for name in names)
        print(f"{version}: {path} ({size / 1024:.1f} KiB)")


if __name__ == "__main__":
    main()
