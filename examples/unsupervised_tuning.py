"""Unsupervised hyperparameter selection (Algorithm 2) end to end.

No labels are used anywhere in the tuning: the series is split
chronologically, candidate (window, β, λ) settings are trained on the
first part and measured by *reconstruction error* on the second, and the
median-error candidates are selected (Section 3.3 of the paper explains
why median beats minimum: the lowest-error model has usually overfitted —
it reconstructs outliers too).

Only the final evaluation peeks at the ground truth, to show what the
chosen configuration achieves.

Usage::

    python examples/unsupervised_tuning.py
"""

from repro.core import (CAEConfig, CAEEnsemble, EnsembleConfig,
                        select_hyperparameters)
from repro.datasets import load_dataset
from repro.metrics import accuracy_report


def main() -> None:
    dataset = load_dataset("ecg", scale=0.4)
    print(f"Tuning on {dataset.train.shape[0]} unlabelled observations")

    base_cae = CAEConfig(input_dim=dataset.dims, embed_dim=16, window=16,
                         n_layers=1)
    tuning_budget = EnsembleConfig(n_models=2, epochs_per_model=2,
                                   max_training_windows=256)
    selection = select_hyperparameters(
        dataset.train, base_cae, tuning_budget,
        n_random_trials=4,
        beta_range=(0.1, 0.3, 0.5, 0.7, 0.9),
        lambda_range=(1.0, 2.0, 8.0, 32.0),
        window_range=(8, 16, 32),
        seed=0)

    print("\nRandom-search trials (sorted by validation error):")
    for trial in sorted(selection.random_trials,
                        key=lambda t: t.reconstruction_error):
        print(f"  w={trial.window:<3d} beta={trial.beta:<4} "
              f"lambda={trial.lam:<5} -> error "
              f"{trial.reconstruction_error:.4f}")
    print(f"Default triple (median error): w={selection.default_trial.window}"
          f" beta={selection.default_trial.beta} "
          f"lambda={selection.default_trial.lam}")
    print(f"Selected after sweeps: w={selection.window} "
          f"beta={selection.beta} lambda={selection.lam}")

    print("\nTraining the final model with the selected hyperparameters ...")
    final = CAEEnsemble(
        CAEConfig(input_dim=dataset.dims, embed_dim=32,
                  window=selection.window, n_layers=2),
        EnsembleConfig(n_models=3, epochs_per_model=3,
                       diversity_weight=selection.lam,
                       transfer_fraction=selection.beta, seed=0))
    final.fit(dataset.train)
    report = accuracy_report(dataset.test_labels,
                             final.score(dataset.test))
    print("Held-out accuracy (labels used for evaluation only):")
    for metric, value in report.as_dict().items():
        print(f"  {metric:>9s}: {value:.4f}")


if __name__ == "__main__":
    main()
