"""Spacecraft telemetry triage: ensemble internals on MSL-like data.

Beyond a single score, operators want to know *why* a window looks
anomalous.  This example trains CAE-Ensemble on rover telemetry and then
inspects the model:

* per-basic-model disagreement — windows where the ensemble members
  disagree most (high Eq. 9 diversity) are the ambiguous cases worth a
  human look;
* attention maps — which timestamps of a suspicious window the decoder
  attended to while reconstructing it;
* per-dimension reconstruction errors — which of the 55 channels drove
  the alert.

Usage::

    python examples/spacecraft_telemetry.py
"""

import numpy as np

from repro.core import CAEConfig, CAEEnsemble, EnsembleConfig
from repro.datasets import load_dataset, sliding_windows
from repro.metrics import accuracy_report
from repro.nn import Tensor, no_grad


def main() -> None:
    dataset = load_dataset("msl", scale=0.3)
    window = 16
    model = CAEEnsemble(
        CAEConfig(input_dim=dataset.dims, embed_dim=32, window=window,
                  n_layers=2),
        EnsembleConfig(n_models=3, epochs_per_model=3,
                       diversity_weight=16.0, transfer_fraction=0.7,
                       seed=0))
    print(f"Training on {dataset.dims}-channel telemetry ...")
    model.fit(dataset.train)

    scores = model.score(dataset.test)
    report = accuracy_report(dataset.test_labels, scores)
    print(f"Accuracy: F1={report.f1:.4f} PR={report.pr_auc:.4f} "
          f"ROC={report.roc_auc:.4f}")

    # --- triage the most anomalous window --------------------------------
    top = int(np.argmax(scores))
    start = max(0, top - window + 1)
    suspicious = dataset.test[start:start + window]
    print(f"\nMost anomalous observation: t={top} "
          f"(score {scores[top]:.2f}, "
          f"label={'outlier' if dataset.test_labels[top] else 'normal'})")

    # Which channels drove it? Per-dimension squared errors, first model.
    scaled = model.scaler.transform(suspicious)
    with no_grad():
        recon = model.models[0](Tensor(scaled[None]))
    per_dim = ((recon.data[0] - scaled) ** 2).mean(axis=0)
    worst = np.argsort(per_dim)[::-1][:5]
    print("Channels with the largest reconstruction error:")
    for dim in worst:
        print(f"  channel {int(dim):>3d}: error {per_dim[dim]:.3f}")

    # Where did the decoder look? Attention of the last layer.
    maps = model.models[0].attention_maps(scaled[None])
    last_layer = maps[-1][0]                  # (w, w)
    focus = last_layer[-1]                    # attention of the final step
    print("Attention of the final timestamp over the window "
          "(top-3 positions):",
          np.argsort(focus)[::-1][:3].tolist())

    # --- ensemble disagreement ------------------------------------------
    sample = dataset.test[:400]
    outputs = model.model_outputs(sample)
    windows = np.array(sliding_windows(model.scaler.transform(sample),
                                       window))
    disagreement = np.zeros(windows.shape[0])
    for i in range(len(outputs)):
        for j in range(i + 1, len(outputs)):
            disagreement += np.linalg.norm(
                (outputs[i] - outputs[j]).reshape(windows.shape[0], -1),
                axis=1)
    ambiguous = np.argsort(disagreement)[::-1][:5]
    print("\nWindows with the highest ensemble disagreement "
          "(candidates for human review):")
    for index in ambiguous:
        print(f"  window starting at t={int(index)} "
              f"(disagreement {disagreement[index]:.2f})")


if __name__ == "__main__":
    main()
