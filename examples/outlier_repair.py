"""Time-series cleaning: detect outliers, then repair them.

The paper's conclusion proposes "unsupervised time series cleaning by
repairing detected outliers" as future work; this example runs that
pipeline with the :mod:`repro.core.repair` extension:

1. corrupt a clean signal with spikes (so we can measure repair quality),
2. train CAE-Ensemble on (separate) clean history,
3. detect and repair — flagged observations are replaced by the
   ensemble's median reconstruction,
4. compare RMSE-to-truth before and after, against a linear-interpolation
   baseline repair.

Usage::

    python examples/outlier_repair.py
"""

import numpy as np

from repro.core import (CAEConfig, CAEEnsemble, EnsembleConfig,
                        estimate_outlier_ratio, repair_quality,
                        repair_series)


def make_signal(length, seed):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    series = np.stack([np.sin(2 * np.pi * t / 30),
                       np.cos(2 * np.pi * t / 47),
                       np.sin(2 * np.pi * t / 75 + 1.0)], axis=1)
    return series + 0.04 * rng.standard_normal(series.shape)


def main() -> None:
    history = make_signal(800, seed=1)       # clean training history
    clean = make_signal(600, seed=2)         # ground truth for evaluation
    rng = np.random.default_rng(3)
    corrupted = clean.copy()
    positions = rng.choice(np.arange(20, 580), size=20, replace=False)
    for position in positions:
        dim = int(rng.integers(3))
        corrupted[position, dim] += rng.choice([-1.0, 1.0]) * 4.0
    print(f"Corrupted {positions.size} of {clean.shape[0]} observations")

    model = CAEEnsemble(
        CAEConfig(input_dim=3, embed_dim=24, window=16, n_layers=2),
        EnsembleConfig(n_models=3, epochs_per_model=3,
                       diversity_weight=2.0, transfer_fraction=0.5,
                       seed=0))
    print("Training on clean history ...")
    model.fit(history)

    # No one tells us the contamination level — estimate it from scores.
    scores = model.score(corrupted)
    estimated_ratio = estimate_outlier_ratio(scores)
    print(f"Estimated outlier ratio: {estimated_ratio:.2%} "
          f"(true: {positions.size / clean.shape[0]:.2%})")

    for policy in ("reconstruction", "interpolation"):
        result = repair_series(model, corrupted, ratio=estimated_ratio,
                               policy=policy)
        quality = repair_quality(clean, corrupted, result.repaired)
        print(f"\nPolicy {policy!r}: repaired {result.n_repaired} "
              f"observations")
        print(f"  RMSE vs truth: corrupted {quality['rmse_corrupted']:.4f} "
              f"-> repaired {quality['rmse_repaired']:.4f} "
              f"({quality['improvement']:.1f}x better)")


if __name__ == "__main__":
    main()
