"""Streaming outlier detection with the ``repro.streaming`` engine.

The paper's Table 8 argues CAE-Ensemble supports online settings: training
happens offline, and each arriving observation is scored by one forward
pass over the window ending at it.  This example replays a telemetry
stream through a :class:`~repro.streaming.StreamingDetector`:

* micro-batches amortise the forward pass over many arrivals (the hot
  path — see ``benchmarks/test_streaming_throughput.py``);
* the alert threshold is calibrated *on the stream itself* by
  :class:`~repro.streaming.BurnInMAD` — watch quietly for a burn-in
  period, then alert above ``median + k·MAD`` of the burn-in scores,
  which absorbs the train→test distribution shift that plagues
  thresholds derived from training scores;
* a DDM-style drift detector watches the reconstruction-error stream and,
  if the data regime shifts for good, an :class:`EnsembleRefresher`
  retrains the ensemble on recent history, warm-started from the old
  models' parameters (β transfer, Section 3.2.1);
* the refresh runs **asynchronously** (``refresh_mode="async"``): a
  background worker trains the replacement while the old ensemble keeps
  serving, and the swap lands atomically at the next micro-batch
  boundary — per-arrival latency stays flat through a retrain.  The
  retraining corpus is a recency-weighted reservoir
  (``corpus="decayed_reservoir"``), so a slice of pre-drift context
  survives into the refreshed model;
* the run is observable for free: the engine records serve-latency
  histograms and drift/refresh counters into the process metrics
  registry and traces each refresh lifecycle end to end
  (``repro.obs``, ``docs/observability.md``) — the tail of this script
  prints the registry's latency quantiles and the refresh trace.

Usage::

    python examples/streaming_detection.py
"""

import time

import numpy as np

from repro.core import CAEConfig, CAEEnsemble, EnsembleConfig
from repro.datasets import load_dataset
from repro.metrics import stream_event_report
from repro.obs import default_registry, default_tracer
from repro.streaming import (BurnInMAD, DDMDrift, EnsembleRefresher,
                             StreamingDetector)

MICRO_BATCH = 32


def main() -> None:
    dataset = load_dataset("smd", scale=0.3)
    window = 16
    burn_in = 150
    model = CAEEnsemble(
        CAEConfig(input_dim=dataset.dims, embed_dim=24, window=window,
                  n_layers=2),
        EnsembleConfig(n_models=3, epochs_per_model=2,
                       diversity_weight=32.0, transfer_fraction=0.2,
                       seed=0))
    print("Offline training ...")
    model.fit(dataset.train)
    print(f"  done in {model.train_seconds_:.1f}s")

    detector = StreamingDetector(
        model,
        calibrator=BurnInMAD(burn_in=burn_in, k=8.0),
        drift_detector=DDMDrift(),
        refresher=EnsembleRefresher(min_history=512, cooldown=1024,
                                    corpus="decayed_reservoir"),
        history=2048, refresh_mode="async")
    # Seed the rolling window with the training tail so the first arrival
    # already completes a full window.
    detector.warm_up(dataset.train[-(window - 1):])

    stream = dataset.test[:800]
    labels = dataset.test_labels[:800]
    updates = []
    batch_seconds = []
    for start in range(0, len(stream), MICRO_BATCH):
        chunk = stream[start:start + MICRO_BATCH]
        tick = time.perf_counter()
        updates.extend(detector.update_batch(chunk))
        batch_seconds.append((time.perf_counter() - tick) / len(chunk))
    calibrated = next(u for u in updates if u.threshold is not None)
    print(f"Burn-in complete after {burn_in} observations; "
          f"alert threshold {calibrated.threshold:.2f}")

    # Drain any refresh still building when the replay ends, so its cost
    # is reported; a live deployment would just keep streaming instead.
    detector.wait_for_refresh(timeout=120)
    report = stream_event_report(
        labels, detector.alerts,
        drift_indices=[event.index for event in detector.drift_events],
        refresh_reports=detector.refresh_reports)
    evaluated = detector.n_observations - burn_in
    print(f"\nProcessed {evaluated} post-burn-in observations "
          f"({int(labels[burn_in:].sum())} labelled outliers in "
          f"{report.n_events} events), raised {report.n_alerts} alerts "
          f"({report.n_alerts - report.n_false_alarms} on labelled "
          f"outliers)")
    print(f"Events detected: {report.n_detected}/{report.n_events}"
          + (f", mean detection latency "
             f"{report.mean_latency:.1f} observations"
             if report.n_detected else ""))
    print(f"Drift events: {report.n_drift_events}, "
          f"model refreshes: {report.n_refreshes} "
          f"({report.n_async_refreshes} async)")
    if report.n_refreshes:
        print(f"  refresh cost {report.total_refresh_seconds:.1f}s trained "
              f"in the background; swap lag "
              f"{report.mean_refresh_lag:.0f} observations after the "
              f"drift trigger (scoring never paused)")
    print("First alerts:")
    for index in detector.alerts[:8]:
        marker = "TRUE OUTLIER" if labels[index] else "false alarm"
        print(f"  t={index:<4d} [{marker}]")
    print(f"\nPer-observation latency (micro-batch of {MICRO_BATCH}): "
          f"median {np.median(batch_seconds) * 1000:.3f} ms, "
          f"p95 {np.percentile(batch_seconds, 95) * 1000:.3f} ms "
          f"(Table 8 reports ~0.05 ms on dual TITAN RTX)")

    # The same numbers — plus the refresh lifecycle — were recorded
    # as telemetry while the stream ran (repro.obs; no setup needed).
    batch_latency = default_registry().histogram(
        "repro_stream_update_batch_seconds")
    quantiles = batch_latency.percentiles()
    print(f"\nTelemetry (process registry): update_batch p50 "
          f"{quantiles['p50'] * 1000:.2f} ms, p99 "
          f"{quantiles['p99'] * 1000:.2f} ms over {batch_latency.count} "
          f"batches")
    refresh_spans = [span for span in default_tracer().finished()
                     if span.name.startswith("refresh")]
    if refresh_spans:
        print("Refresh trace (one connected trace per drift):")
        for span in refresh_spans:
            print(f"  {span.name:<20} {span.duration * 1000:9.1f} ms  "
                  f"trace={span.trace_id}")


if __name__ == "__main__":
    main()
