"""Streaming outlier detection: score observations one at a time.

The paper's Table 8 argues CAE-Ensemble supports online settings: training
happens offline, and each arriving observation is scored by one forward
pass over the window ending at it (~tens of microseconds on the authors'
GPUs).  This example replays a telemetry stream, keeps a rolling window
and scores each arrival with :meth:`CAEEnsemble.score_window`.

The alert threshold is calibrated *on the stream itself* during a burn-in
period (no labels involved): the detector watches quietly for a while,
then alerts above ``median + k·MAD`` of the burn-in scores.  The median /
MAD pair is robust to outliers that slip into the burn-in window, and
calibrating on live traffic absorbs the train→test distribution shift
that plagues thresholds derived from training scores.

Usage::

    python examples/streaming_detection.py
"""

import time

import numpy as np

from repro.core import CAEConfig, CAEEnsemble, EnsembleConfig
from repro.datasets import load_dataset


def main() -> None:
    dataset = load_dataset("smd", scale=0.3)
    window = 16
    burn_in = 150
    model = CAEEnsemble(
        CAEConfig(input_dim=dataset.dims, embed_dim=24, window=window,
                  n_layers=2),
        EnsembleConfig(n_models=3, epochs_per_model=2,
                       diversity_weight=32.0, transfer_fraction=0.2,
                       seed=0))
    print("Offline training ...")
    model.fit(dataset.train)
    print(f"  done in {model.train_seconds_:.1f}s")

    stream = dataset.test[:800]
    labels = dataset.test_labels[:800]
    buffer = list(dataset.train[-(window - 1):])   # warm rolling window
    burn_in_scores = []
    threshold = None
    alerts = []
    latencies = []
    for t, observation in enumerate(stream):
        buffer.append(observation)
        if len(buffer) > window:
            buffer.pop(0)
        if len(buffer) < window:
            continue
        start = time.perf_counter()
        score = model.score_window(np.asarray(buffer))
        latencies.append(time.perf_counter() - start)
        if t < burn_in:
            burn_in_scores.append(score)
            continue
        if threshold is None:
            # Robust calibration: median + 8 MAD of quiet(ish) operation.
            median = float(np.median(burn_in_scores))
            mad = float(np.median(np.abs(np.asarray(burn_in_scores) -
                                         median)))
            threshold = median + 8.0 * mad
            print(f"Burn-in complete after {burn_in} observations; "
                  f"alert threshold {threshold:.2f} "
                  f"(median {median:.2f} + 8 x MAD {mad:.2f})")
        if score > threshold:
            alerts.append((t, score, bool(labels[t])))

    hits = sum(1 for _, _, is_true in alerts if is_true)
    evaluated = len(stream) - burn_in
    outliers_seen = int(labels[burn_in:].sum())
    print(f"\nProcessed {evaluated} post-burn-in observations "
          f"({outliers_seen} labelled outliers), raised {len(alerts)} "
          f"alerts ({hits} on labelled outliers)")
    print("First alerts:")
    for t, score, is_true in alerts[:8]:
        marker = "TRUE OUTLIER" if is_true else "false alarm"
        print(f"  t={t:<4d} score={score:10.3f}  [{marker}]")
    print(f"\nPer-observation latency: median "
          f"{np.median(latencies) * 1000:.2f} ms, "
          f"p95 {np.percentile(latencies, 95) * 1000:.2f} ms "
          f"(Table 8 reports ~0.05 ms on dual TITAN RTX)")


if __name__ == "__main__":
    main()
