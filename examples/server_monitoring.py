"""Server-fleet monitoring: CAE-Ensemble vs classic detectors on SMD-like
metrics.

The paper's SMD experiments motivate outlier detection on server machine
metrics (CPU, memory, I/O, network — 38 correlated dimensions).  This
example trains the diversity-driven ensemble on a window of normal
operation, then compares it against Isolation Forest and Moving Average
Smoothing on a test window containing injected incidents, and finally
groups the flagged observations into incident reports.

Usage::

    python examples/server_monitoring.py
"""

import numpy as np

from repro.baselines import (CAEEnsembleDetector, IsolationForest,
                             MovingAverageSmoothing)
from repro.datasets import load_dataset
from repro.metrics import accuracy_report


def incidents_from_flags(flags: np.ndarray, merge_gap: int = 5):
    """Merge consecutive flagged observations into incident intervals."""
    incidents = []
    start = None
    last = None
    for index in np.flatnonzero(flags):
        if start is None:
            start = last = int(index)
        elif index - last <= merge_gap:
            last = int(index)
        else:
            incidents.append((start, last))
            start = last = int(index)
    if start is not None:
        incidents.append((start, last))
    return incidents


def main() -> None:
    dataset = load_dataset("smd", scale=0.5)
    print(f"Server metrics: {dataset.dims} dimensions, "
          f"{dataset.train.shape[0]} training / {dataset.test.shape[0]} "
          f"test observations")

    detectors = {
        "CAE-Ensemble": CAEEnsembleDetector(
            window=32, embed_dim=32, n_layers=2, n_models=3,
            epochs_per_model=3, diversity_weight=32.0,   # Table 2: SMD
            transfer_fraction=0.2, seed=0),
        "IsolationForest": IsolationForest(seed=0),
        "MovingAverage": MovingAverageSmoothing(window=32),
    }

    reports = {}
    scores = {}
    for name, detector in detectors.items():
        print(f"\nFitting {name} ...")
        scores[name] = detector.fit_score(dataset.train, dataset.test)
        reports[name] = accuracy_report(dataset.test_labels, scores[name])

    print(f"\n{'Detector':<16} {'Precision':>9} {'Recall':>9} {'F1':>9} "
          f"{'PR-AUC':>9} {'ROC-AUC':>9}")
    for name, report in reports.items():
        print(f"{name:<16} {report.precision:>9.4f} {report.recall:>9.4f} "
              f"{report.f1:>9.4f} {report.pr_auc:>9.4f} "
              f"{report.roc_auc:>9.4f}")

    # Turn the best detector's flags into operator-facing incidents.
    best = max(reports, key=lambda name: reports[name].pr_auc)
    from repro.metrics import top_k_threshold
    threshold = top_k_threshold(scores[best],
                                dataset.outlier_ratio * 100.0)
    flags = scores[best] > threshold
    incidents = incidents_from_flags(flags)
    print(f"\n{best} incident report ({len(incidents)} incidents):")
    for start, stop in incidents[:8]:
        peak = float(scores[best][start:stop + 1].max())
        print(f"  observations {start:>5d}-{stop:<5d} peak score "
              f"{peak:.2f}")
    if len(incidents) > 8:
        print(f"  ... and {len(incidents) - 8} more")


if __name__ == "__main__":
    main()
