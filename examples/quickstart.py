"""Quickstart: detect outliers in an ECG series with CAE-Ensemble.

Runs in well under a minute on CPU.  Demonstrates the core public API:

1. load a dataset (a synthetic stand-in for the paper's ECG corpus),
2. configure and train a small diversity-driven ensemble,
3. score every observation and flag the top ones as outliers,
4. evaluate against the (test-only) ground-truth labels.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro.core import CAEConfig, CAEEnsemble, EnsembleConfig
from repro.datasets import load_dataset
from repro.metrics import accuracy_report


def main() -> None:
    dataset = load_dataset("ecg", scale=0.5)
    print(f"Dataset: {dataset.name} — {dataset.train.shape[0]} observations, "
          f"{dataset.dims} dimensions, "
          f"{dataset.outlier_ratio:.1%} labelled outliers in the test set")

    # A small configuration that trains in seconds; paper_config() gives
    # the published setting (D' = 256, 10 layers, 8 models).
    cae_config = CAEConfig(input_dim=dataset.dims, embed_dim=32, window=16,
                           n_layers=2)
    ensemble_config = EnsembleConfig(n_models=3, epochs_per_model=3,
                                     diversity_weight=2.0,      # λ (Table 2)
                                     transfer_fraction=0.5,     # β (Table 2)
                                     seed=0)
    model = CAEEnsemble(cae_config, ensemble_config)

    print("Training", ensemble_config.n_models, "basic models ...")
    model.fit(dataset.train)
    print(f"Trained in {model.train_seconds_:.1f}s; "
          f"final reconstruction loss "
          f"{model.history[-1].reconstruction:.4f}")

    scores = model.score(dataset.test)
    report = accuracy_report(dataset.test_labels, scores)
    print("\nAccuracy vs ground truth (best-F1 threshold):")
    for metric, value in report.as_dict().items():
        print(f"  {metric:>9s}: {value:.4f}")

    # Flag outliers using the known outlier ratio as the threshold rule
    # (Figure 13 shows this is a good choice when the ratio is known).
    predictions = model.detect(dataset.test, ratio=dataset.outlier_ratio)
    flagged = np.flatnonzero(predictions)
    print(f"\nFlagged {flagged.size} observations; first ten indices: "
          f"{flagged[:10].tolist()}")


if __name__ == "__main__":
    main()
