"""Bench E-T6: regenerate Table 6 (quantifying the ensemble diversity).

Shape check — the table's whole point: the diversity-driven objective
produces a strictly more diverse ensemble (higher Eq. 10 DIV_F) than
independent training, on both datasets."""

from repro.experiments import table_6
import pytest

pytestmark = pytest.mark.slow  # paper-artifact regeneration: full runs only


def test_table6(benchmark, bench_budget, save_artifact):
    result = benchmark.pedantic(
        lambda: table_6(budget=bench_budget, seed=0), rounds=1, iterations=1)
    save_artifact("table6", result.rendering)

    for dataset_name, measurements in result.data.items():
        assert measurements["CAE-Ensemble"] > measurements["No Diversity"], \
            f"{dataset_name}: {measurements}"
        assert measurements["No Diversity"] >= 0.0
