"""Fleet refresh admission control: K co-drifting streams, one build.

The fleet-scale cost problem: streams that drift *together* (co-located
servers seeing the same regime change) each trigger a refresh of the
same shared ensemble.  Without admission control that is K independent
background builds training K identical replacements — K× the training
CPU of Table 7 for one model's worth of new information.  The
:class:`~repro.streaming.RefreshCoordinator` dedups requests whose
ensemble is the same instance and fans the single replacement out to
every subscriber, while a bounded pool caps how many distinct builds
ever train at once.

This benchmark trains real CAE-Ensembles (no stubs) and asserts the
acceptance claims:

* **dedup** — K streams sharing one ensemble and drifting in the same
  window run exactly **1** build; every stream swaps to the same
  replacement instance at its own boundary;
* **CPU** — total build seconds under the coordinator stay well under
  the independent-workers total (measured here by actually running the
  K independent builds);
* **cap** — with K *distinct* ensembles and ``max_concurrent_builds=1``
  no two builds ever train simultaneously.
"""

import copy
import threading
import time

import numpy as np
import pytest

from repro.core import CAEConfig, CAEEnsemble, EnsembleConfig
from repro.metrics import fleet_refresh_report
from repro.streaming import (EnsembleRefresher, RefreshCoordinator,
                             StreamingDetector)
from repro.streaming.drift import DriftEvent

# Wall-clock ratio assertions under deliberate thread contention: kept
# out of the PR fast lane; the full-suite and nightly lanes run it.
pytestmark = pytest.mark.slow

N_STREAMS = 6
TRIGGER_AT = 50
WINDOW = 16
HISTORY = 256
STREAM_LENGTH = 120


class FireOnce:
    """Drift stub firing one confirmed drift at a fixed arrival, so all
    streams and all runs see the exact same trigger."""

    def __init__(self, at: int):
        self.at = at

    def update(self, score, index):
        if index == self.at:
            return DriftEvent(index=index, detector="bench", kind="drift",
                              statistic=1.0, threshold=0.0)
        return None

    def reset(self):
        pass


def make_fitted_ensemble(bench_budget):
    rng = np.random.default_rng(0)
    t = np.arange(1024)
    train = np.stack([np.sin(2 * np.pi * t / 31),
                      np.cos(2 * np.pi * t / 47),
                      np.sin(2 * np.pi * t / 19)], axis=1)
    train = train + 0.05 * rng.standard_normal(train.shape)
    ensemble = CAEEnsemble(
        CAEConfig(input_dim=3, embed_dim=bench_budget.embed_dim,
                  window=WINDOW, n_layers=bench_budget.n_layers),
        EnsembleConfig(n_models=bench_budget.n_models,
                       epochs_per_model=bench_budget.epochs, seed=0,
                       max_training_windows=bench_budget
                       .max_training_windows,
                       # The fused batched trainer cuts the fixture's
                       # build cost; refresh builds inherit it through
                       # the config replace in EnsembleRefresher.build.
                       fused_training=True))
    ensemble.fit(train)
    return ensemble, train


def make_stream(length=STREAM_LENGTH):
    """Co-drifting traffic: the same regime shift on every stream."""
    rng = np.random.default_rng(1)
    t = np.arange(2048, 2048 + length)
    stream = np.stack([np.sin(2 * np.pi * t / 31),
                       np.cos(2 * np.pi * t / 47),
                       np.sin(2 * np.pi * t / 19)], axis=1)
    stream = stream + 0.05 * rng.standard_normal(stream.shape)
    stream[TRIGGER_AT:] += 1.5
    return stream


def make_detector(ensemble, train, coordinator=None):
    detector = StreamingDetector(
        ensemble, drift_detector=FireOnce(TRIGGER_AT),
        refresher=EnsembleRefresher(epochs_per_model=2),
        history=HISTORY, refresh_mode="async", coordinator=coordinator)
    detector.warm_up(train[-(WINDOW - 1):])
    return detector


def drive_to_refresh(detectors, stream):
    """Replay the stream on every detector: pre-trigger chunk first,
    then a tiny trigger chunk per stream back to back — so all K
    submissions land while the first build is still training — then the
    rest, then drain."""
    for detector in detectors:
        detector.update_batch(stream[:TRIGGER_AT - 1])
    for detector in detectors:                 # ~ms per stream: submits
        detector.update_batch(stream[TRIGGER_AT - 1:TRIGGER_AT + 1])
    for detector in detectors:
        detector.update_batch(stream[TRIGGER_AT + 1:])
    for detector in detectors:
        assert detector.wait_for_refresh(timeout=120) or \
            detector.n_refreshes == 1
    for detector in detectors:
        assert detector.n_refreshes == 1
    return [detector.refresh_reports[0] for detector in detectors]


def test_coordinator_dedups_shared_ensemble_refreshes(bench_budget,
                                                      save_artifact):
    ensemble, train = make_fitted_ensemble(bench_budget)
    stream = make_stream()

    # --- Coordinated: K streams, one shared ensemble, one build -------
    coordinator = RefreshCoordinator(max_concurrent_builds=1)
    coordinated = [make_detector(ensemble, train, coordinator)
                   for _ in range(N_STREAMS)]
    tick = time.perf_counter()
    coordinated_reports = drive_to_refresh(coordinated, stream)
    coordinated_wall = time.perf_counter() - tick
    stats = coordinator.stats()
    report = fleet_refresh_report(coordinator)

    # The tentpole claim: ONE build served all K co-drifting streams.
    assert stats.n_requests == N_STREAMS
    assert stats.n_admitted == 1, (
        f"K streams sharing one ensemble must coalesce into one build, "
        f"ran {stats.n_admitted}")
    assert stats.n_deduped == N_STREAMS - 1
    assert stats.max_concurrent == 1
    assert report.within_cap and report.builds_saved == N_STREAMS - 1
    # Fan-out preserved sharing: every stream serves the SAME instance.
    replacement = coordinated[0].ensemble
    assert replacement is not ensemble
    assert all(detector.ensemble is replacement
               for detector in coordinated)
    # Distinct builds' training time — exactly one build's worth.
    coordinated_cpu = coordinated_reports[0].train_seconds

    # --- Independent: the status quo — K private workers, K builds ----
    independent = [make_detector(ensemble, train, coordinator=None)
                   for _ in range(N_STREAMS)]
    tick = time.perf_counter()
    independent_reports = drive_to_refresh(independent, stream)
    independent_wall = time.perf_counter() - tick
    independent_cpu = sum(r.train_seconds for r in independent_reports)
    # Each stream trained its own replacement: no sharing afterwards.
    assert len({id(detector.ensemble) for detector in independent}) \
        == N_STREAMS

    rendering = "\n".join([
        "Fleet refresh admission control: "
        f"{N_STREAMS} co-drifting streams, one shared ensemble",
        f"  ({ensemble.n_models} basic models/build, refresh corpus "
        f"<= {HISTORY} rows, drift at arrival {TRIGGER_AT})",
        f"  independent workers   builds {N_STREAMS}   "
        f"total build seconds {independent_cpu:7.2f}   "
        f"wall {independent_wall:6.2f}s",
        f"  coordinated (cap 1)   builds {stats.n_admitted}   "
        f"total build seconds {coordinated_cpu:7.2f}   "
        f"wall {coordinated_wall:6.2f}s",
        f"  requests {report.n_requests}, deduped {report.n_deduped} "
        f"(dedup ratio {report.dedup_ratio:.0%}), "
        f"builds saved {report.builds_saved}",
        f"  build CPU ratio coordinated/independent = "
        f"{coordinated_cpu / independent_cpu:.2f}x "
        f"(ideal {1 / N_STREAMS:.2f}x)",
    ])
    print("\n" + rendering)
    save_artifact("fleet_admission", rendering)

    # CPU claim: one build instead of K keeps total build cost well
    # under the independent total (allow generous noise margin).
    assert coordinated_cpu <= independent_cpu / 2, (
        f"coordinated fleet should spend far less build CPU than "
        f"independent workers, got {coordinated_cpu:.2f}s vs "
        f"{independent_cpu:.2f}s")


def test_concurrency_cap_bounds_distinct_builds(bench_budget):
    """K distinct ensembles drifting together under cap 1: builds run
    strictly one at a time (real training, measured inside build)."""
    ensemble, train = make_fitted_ensemble(bench_budget)
    stream = make_stream()
    active, peak = [0], [0]
    track = threading.Lock()

    class TrackedRefresher(EnsembleRefresher):
        def build(self, *args, **kwargs):
            with track:
                active[0] += 1
                peak[0] = max(peak[0], active[0])
            try:
                return super().build(*args, **kwargs)
            finally:
                with track:
                    active[0] -= 1

    coordinator = RefreshCoordinator(max_concurrent_builds=1)
    detectors = []
    for _ in range(3):
        private = copy.deepcopy(ensemble)      # distinct identity
        detector = StreamingDetector(
            private, drift_detector=FireOnce(TRIGGER_AT),
            refresher=TrackedRefresher(epochs_per_model=2),
            history=HISTORY, refresh_mode="async",
            coordinator=coordinator)
        detector.warm_up(train[-(WINDOW - 1):])
        detectors.append(detector)
    drive_to_refresh(detectors, stream)
    assert coordinator.drain(timeout=120)
    stats = coordinator.stats()
    assert stats.n_admitted == 3 and stats.n_deduped == 0
    assert stats.max_concurrent == 1
    assert peak[0] == 1, (
        f"cap 1 must serialise training, observed {peak[0]} concurrent "
        f"builds")
