"""Bench E-T8: regenerate Table 8 (online inference latency per window).

Shape checks: per-window scoring is fast enough for streaming (the paper
reports ~0.05 ms on GPU; we allow generous CPU headroom), CAE-Ensemble
costs at most a small multiple of a single CAE — on the paper's hardware
the basic models run in parallel making the gap tiny; the fused engine
(:mod:`repro.core.fused`) recovers that parallelism on CPU by batching
all models into one GEMM per layer, so the table now reports the fused
serving path next to the per-model loop and their speedup."""

from repro.experiments import table_8
import pytest

pytestmark = pytest.mark.slow  # paper-artifact regeneration: full runs only

DATASETS = ("ecg", "smap")


def test_table8(benchmark, bench_budget, save_artifact):
    result = benchmark.pedantic(
        lambda: table_8(budget=bench_budget, seed=0, datasets=DATASETS,
                        n_probe_windows=30),
        rounds=1, iterations=1)
    save_artifact("table8", result.rendering)

    for dataset in DATASETS:
        cae_ms = result.data["CAE"][dataset]
        ensemble_ms = result.data["CAE-Ensemble"][dataset]
        unfused_ms = result.data["CAE-Ensemble (unfused)"][dataset]
        assert 0.0 < cae_ms < 1000.0        # streaming-feasible on CPU
        assert 0.0 < ensemble_ms < 1000.0
        # On the serving default (fused) path the ensemble costs at most
        # ~M single models plus overhead (M = 2 under the bench budget);
        # in practice fusion brings it close to parity with one CAE.
        assert ensemble_ms <= cae_ms * (bench_budget.n_models + 2)
        # The fused engine must not lose to the loop it replaces; at
        # M = 2 the win is modest (the 40-model speedup lives in
        # tools/bench.py -> BENCH_inference.json), so only parity plus
        # timer noise is asserted here.
        assert ensemble_ms <= unfused_ms * 1.2, (
            f"fused serving slower than the per-model loop on {dataset}: "
            f"{ensemble_ms:.3f}ms vs {unfused_ms:.3f}ms")
