"""Serving latency during a drift-triggered refresh: async vs inline.

The serving-vs-adaptation tension: a drift-triggered refresh retrains the
ensemble exactly when fresh scores matter most.  Inline mode pays that
training bill on the ingesting thread — the triggering ``update()``
stalls for the full build.  Async mode builds on a background worker
while the old ensemble keeps serving and swaps at the next update
boundary, so per-arrival latency stays flat (up to GIL sharing with the
training thread) at the cost of a short staleness window.

This benchmark replays the same stream three ways — no refresh, inline
refresh, async refresh — measuring every single-``update()`` call, and
asserts the tentpole claim: **p99 update latency during an async refresh
stays flat — within 2x the no-refresh baseline, or (now that fused
inference has pushed that baseline under a millisecond) an order of
magnitude below the inline stall — while inline mode shows the expected
stall** (one update paying the entire training time).  The baseline p99
is the max over two independent runs, which de-noises the tail estimate
the ratio is judged against.
"""

import time

import numpy as np
import pytest

from repro.core import CAEConfig, CAEEnsemble, EnsembleConfig
from repro.streaming import EnsembleRefresher, StreamingDetector
from repro.streaming.drift import DriftEvent

# Wall-clock p99 assertions under deliberate GIL contention: stable on a
# quiet machine, but kept out of the PR fast lane — the nightly
# streaming-stress lane and the full-suite lane run it.
pytestmark = pytest.mark.slow

STREAM_LENGTH = 800
TRIGGER_AT = 50
WINDOW = 16
HISTORY = 512


class FireOnce:
    """Drift stub firing one confirmed drift at a fixed arrival, so all
    three runs see the exact same trigger."""

    def __init__(self, at: int):
        self.at = at

    def update(self, score, index):
        if index == self.at:
            return DriftEvent(index=index, detector="bench", kind="drift",
                              statistic=1.0, threshold=0.0)
        return None

    def reset(self):
        pass


def make_fitted_ensemble(bench_budget):
    rng = np.random.default_rng(0)
    t = np.arange(1024)
    train = np.stack([np.sin(2 * np.pi * t / 31),
                      np.cos(2 * np.pi * t / 47),
                      np.sin(2 * np.pi * t / 19)], axis=1)
    train = train + 0.05 * rng.standard_normal(train.shape)
    ensemble = CAEEnsemble(
        CAEConfig(input_dim=3, embed_dim=bench_budget.embed_dim,
                  window=WINDOW, n_layers=bench_budget.n_layers),
        EnsembleConfig(n_models=bench_budget.n_models,
                       epochs_per_model=bench_budget.epochs, seed=0,
                       max_training_windows=bench_budget
                       .max_training_windows))
    ensemble.fit(train)
    return ensemble, train


def make_stream(length=STREAM_LENGTH):
    rng = np.random.default_rng(1)
    t = np.arange(2048, 2048 + length)
    stream = np.stack([np.sin(2 * np.pi * t / 31),
                       np.cos(2 * np.pi * t / 47),
                       np.sin(2 * np.pi * t / 19)], axis=1)
    return stream + 0.05 * rng.standard_normal(stream.shape)


def timed_replay(detector, stream):
    """Per-call latency (ms) of scalar updates over the whole stream."""
    latencies = np.empty(len(stream))
    for i, observation in enumerate(stream):
        tick = time.perf_counter()
        detector.update(observation)
        latencies[i] = time.perf_counter() - tick
    return latencies * 1e3


def make_detector(ensemble, train, refresh_mode=None):
    refresher = None
    drift = None
    if refresh_mode is not None:
        refresher = EnsembleRefresher(epochs_per_model=2)
        drift = FireOnce(TRIGGER_AT)
    detector = StreamingDetector(ensemble, drift_detector=drift,
                                 refresher=refresher, history=HISTORY,
                                 refresh_mode=refresh_mode or "inline")
    detector.warm_up(train[-(WINDOW - 1):])
    return detector


def test_async_refresh_keeps_update_latency_flat(bench_budget,
                                                 save_artifact):
    ensemble, train = make_fitted_ensemble(bench_budget)
    stream = make_stream()

    # Baseline twice: the p99 of a few-ms operation is noisy, and the
    # async ratio is judged against it — take the larger tail estimate.
    baseline = [timed_replay(make_detector(ensemble, train), stream)
                for _ in range(2)]
    base_p99 = max(float(np.percentile(run, 99)) for run in baseline)
    base_median = float(np.median(np.concatenate(baseline)))

    inline_detector = make_detector(ensemble, train, refresh_mode="inline")
    inline = timed_replay(inline_detector, stream)

    async_detector = make_detector(ensemble, train, refresh_mode="async")
    during = timed_replay(async_detector, stream)
    assert async_detector.wait_for_refresh(timeout=120) or \
        async_detector.n_refreshes == 1

    # Both modes completed exactly one refresh off the same trigger.
    assert inline_detector.n_refreshes == 1
    assert async_detector.n_refreshes == 1
    inline_report = inline_detector.refresh_reports[0]
    async_report = async_detector.refresh_reports[0]
    assert inline_report.mode == "inline" and inline_report.swap_lag == 0
    assert async_report.mode == "async" and async_report.swap_lag > 0

    async_p99 = float(np.percentile(during, 99))
    inline_stall = float(inline.max())
    rendering = "\n".join([
        "Single-update() latency during a drift-triggered refresh (ms)",
        f"  stream {STREAM_LENGTH} arrivals, drift at {TRIGGER_AT}, "
        f"{ensemble.n_models} basic models, refresh corpus {HISTORY}",
        f"  no refresh      median {base_median:7.3f}   "
        f"p99 {base_p99:8.3f}   max {max(r.max() for r in baseline):8.3f}",
        f"  inline refresh  median {np.median(inline):7.3f}   "
        f"p99 {np.percentile(inline, 99):8.3f}   max {inline_stall:8.3f}"
        f"   <- the stall: one update pays the whole "
        f"{inline_report.train_seconds:.2f}s build",
        f"  async refresh   median {np.median(during):7.3f}   "
        f"p99 {async_p99:8.3f}   max {during.max():8.3f}"
        f"   (swap lag {async_report.swap_lag} arrivals)",
        f"  async p99 / baseline p99 = {async_p99 / base_p99:.2f}x, "
        f"async max / inline stall = {during.max() / inline_stall:.3f}x",
        f"  inline stall / baseline p99 = {inline_stall / base_p99:.1f}x",
    ])
    print("\n" + rendering)
    save_artifact("async_refresh_latency", rendering)

    # The tentpole claim: async keeps the tail flat.  Fused inference
    # pushed the no-refresh baseline to sub-millisecond p99, so on a
    # single-core runner the tail during a build is set by the GIL/CPU
    # quantum of one background training op, not by serving itself — the
    # ratio is therefore judged against 2x baseline *or* a small
    # fraction of the inline stall (the bill async must never pay),
    # whichever is larger.
    async_budget = max(2.0 * base_p99, inline_stall / 8.0)
    assert async_p99 <= async_budget, (
        f"async refresh should keep p99 update latency within 2x the "
        f"no-refresh baseline (or an order of magnitude under the "
        f"inline stall), got {async_p99:.2f}ms vs baseline "
        f"{base_p99:.2f}ms / stall {inline_stall:.2f}ms")
    # ... while inline shows the expected stall: one arrival paid a
    # training-scale bill, far beyond any baseline tail.
    assert inline_stall >= 4.0 * base_p99, (
        f"inline refresh should stall the triggering update well beyond "
        f"the baseline tail, got max {inline_stall:.2f}ms vs p99 "
        f"{base_p99:.2f}ms")
    assert inline_stall >= 1e3 * inline_report.train_seconds * 0.9, (
        "the inline stall should be at least the build time itself")
