"""Bench E-F15: regenerate Figure 15 (window-size selection).

Shape checks mirror Figure 14: error-ordered candidates, median pick valid
and not the PR-worst choice."""

from repro.experiments import figure_15
import pytest

pytestmark = pytest.mark.slow  # paper-artifact regeneration: full runs only


def test_figure15(benchmark, bench_budget, save_artifact):
    result = benchmark.pedantic(
        lambda: figure_15(budget=bench_budget, seed=0, datasets=("ecg",),
                          window_values=(4, 8, 16, 32)),
        rounds=1, iterations=1)
    save_artifact("figure15", result.rendering)

    data = result.data["ecg"]
    records = data["records"]
    assert len(records) >= 3
    errors = [r["reconstruction_error"] for r in records]
    assert errors == sorted(errors)
    pr_values = [r["pr"] for r in records]
    median_pr = records[data["median_index"]]["pr"]
    assert median_pr >= min(pr_values)
    assert data["median_value"] in [r["value"] for r in records]
