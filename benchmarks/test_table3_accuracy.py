"""Bench E-T3: regenerate Table 3 (ECG / SMD / MSL accuracy, 12 models).

Shape checks (paper claims that must survive the synthetic substrate):
the CAE family places at or near the top on the threshold-free PR metric,
and ensembles do not fall far below their basic models.
"""

import numpy as np

from repro.experiments import table_3
import pytest

pytestmark = pytest.mark.slow  # paper-artifact regeneration: full runs only


def test_table3(benchmark, bench_budget, save_artifact):
    result = benchmark.pedantic(
        lambda: table_3(budget=bench_budget, seed=0), rounds=1, iterations=1)
    save_artifact("table3", result.rendering)

    results = result.data["results"]
    assert set(results) == {"ecg", "smd", "msl"}
    for dataset_name, per_model in results.items():
        assert len(per_model) == 12
        pr = {model: run.report.pr_auc for model, run in per_model.items()}
        # Shape: CAE-Ensemble must rank in the top half by PR on each
        # dataset (the paper has it first or second everywhere).
        ranked = sorted(pr, key=pr.get, reverse=True)
        assert ranked.index("CAE-Ensemble") < 6, \
            f"{dataset_name}: CAE-Ensemble ranked {ranked}"
    # Averaged over the three datasets the convolutional family leads the
    # recurrent one (Table 3's headline).
    mean_pr = {model: np.mean([results[d][model].report.pr_auc
                               for d in results])
               for model in results["ecg"]}
    assert mean_pr["CAE-Ensemble"] > mean_pr["RAE"]
    assert mean_pr["CAE-Ensemble"] > mean_pr["ISF"]
