"""Benchmark configuration: a CPU-friendly budget and artifact persistence.

Every benchmark regenerates one paper artifact (table or figure) on the
``BENCH`` budget, asserts the *shape* of the result (who wins, what trends
hold) and writes the rendering to ``benchmarks/output/<artifact>.txt`` so
the regenerated tables can be inspected and diffed.
"""

import os

import pytest

from repro.experiments import Budget

# Scaled so the full benchmark suite finishes in CPU minutes while still
# training every model on every required dataset.
BENCH = Budget(name="bench", dataset_scale=0.2, epochs=2, n_models=2,
               max_training_windows=256, embed_dim=16, n_layers=2,
               hidden_size=16)

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


@pytest.fixture(autouse=True)
def _cold_chunk_autotune():
    """Benchmarks measure the fused chunk loop: every test starts with a
    cold autotune cache and leaves it cold, so timings never depend on
    the chunk size some earlier test's workload happened to tune."""
    from repro.core.fused import FusedEnsembleScorer
    FusedEnsembleScorer.reset_chunk_autotune()
    yield
    FusedEnsembleScorer.reset_chunk_autotune()


@pytest.fixture(scope="session")
def artifact_dir():
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def save_artifact(artifact_dir):
    def _save(name: str, rendering: str) -> str:
        path = os.path.join(artifact_dir, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(rendering + "\n")
        return path
    return _save


@pytest.fixture
def bench_budget():
    return BENCH
