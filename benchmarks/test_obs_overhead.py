"""Telemetry overhead on the fused serving path.

PR 6 instruments the hot serving loop (``StreamingDetector.update_batch``
and the fused chunk loop in :mod:`repro.core.fused`) with the
:mod:`repro.obs` registry.  The observability contract is that this
instrumentation is cheap enough to leave on in production — and close to
free when disabled:

* **enabled** (a live :class:`~repro.obs.MetricsRegistry`): the serve
  path pays two ``perf_counter`` reads plus a handful of histogram
  observes per micro-batch — budgeted at **< 5 %** of batch throughput;
* **disabled** (:class:`~repro.obs.NullRegistry`): every instrument is a
  shared no-op and every clock read sits behind an ``if obs.enabled:``
  guard, so the only residual cost is the guards themselves — budgeted
  at **< 2 %** (measured analytically below: guard count x guard cost).

Timing-ratio assertions on shared CI machines are inherently noisy, so
the enabled/disabled comparison interleaves the two configurations,
keeps best-of-round minima, and retries the whole measurement a few
times before declaring a regression — the same pattern as
``tools/bench.py``.  The ensemble's basic models are random-initialised
(inference cost does not depend on the weights), keeping the bench in
CPU seconds.
"""

import time

import numpy as np
import pytest

from repro.core import (CAEConfig, CAEEnsemble, EnsembleConfig,
                        FusedEnsembleScorer)
from repro.core.cae import CAE
from repro.datasets.preprocess import StandardScaler
from repro.obs import MetricsRegistry, NullRegistry, use_registry
from repro.streaming import StreamingDetector

pytestmark = pytest.mark.slow


@pytest.fixture(autouse=True)
def pinned_chunk_geometry():
    """Pin the fused chunk size for the whole measurement.

    The enabled/disabled comparison counts guards *per chunk*, so the
    chunk geometry must be identical across every replay — and must not
    inherit whatever an earlier test's autotune probe cached for this
    machine.  The conftest hygiene fixture guarantees the cache starts
    cold; assert that contract, then pin explicitly.
    """
    assert FusedEnsembleScorer._tuned_chunk_rows is None, (
        "autotune cache not cold at bench start — a conftest hygiene "
        "fixture is missing or broken")
    FusedEnsembleScorer.pin_chunk_rows(FusedEnsembleScorer.CHUNK_TARGET_ROWS)
    yield
    FusedEnsembleScorer.reset_chunk_autotune()

WINDOW = 16
DIMS = 3
MICRO_BATCH = 64
STREAM_LENGTH = 512
N_MODELS = 8

ENABLED_BUDGET = 0.05   # live registry: < 5 % of batch throughput
DISABLED_BUDGET = 0.02  # NullRegistry: guards alone, < 2 %
ATTEMPTS = 4            # re-measure before declaring a regression
ROUNDS = 3              # best-of minima within one attempt


def make_series(length, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    series = np.stack([np.sin(2 * np.pi * t / 31),
                       np.cos(2 * np.pi * t / 47),
                       np.sin(2 * np.pi * t / 19)], axis=1)
    return series + 0.05 * rng.standard_normal((length, DIMS))


def fabricate_ensemble(series):
    config = CAEConfig(input_dim=DIMS, embed_dim=16, window=WINDOW,
                       n_layers=2)
    ensemble = CAEEnsemble(config, EnsembleConfig(n_models=N_MODELS, seed=0))
    root = np.random.default_rng(0)
    ensemble.models = [CAE(config, np.random.default_rng(
        root.integers(2 ** 32))) for _ in range(N_MODELS)]
    ensemble.scaler = StandardScaler().fit(series)
    return ensemble


def replay_seconds(ensemble, registry, train, stream):
    """One full micro-batched replay under ``registry``; wall seconds."""
    with use_registry(registry):
        # The fused scorer binds its registry at pack time and is cached
        # on the ensemble — repack under *this* replay's registry so the
        # chunk-loop instrumentation is measured too (pack cost stays
        # outside the timed region, as in production where the build
        # thread packs).
        ensemble.invalidate_fused()
        ensemble.prepare_fused()
        detector = StreamingDetector(ensemble, history=WINDOW)
        detector.warm_up(train[-(WINDOW - 1):])
        tick = time.perf_counter()
        for start in range(0, len(stream), MICRO_BATCH):
            detector.update_batch(stream[start:start + MICRO_BATCH])
        return time.perf_counter() - tick


def measured_overhead(ensemble, train, stream):
    """Best-of-round enabled/disabled seconds, interleaved so slow-machine
    drift (thermal, noisy neighbours) hits both configurations alike."""
    enabled, disabled = float("inf"), float("inf")
    for _ in range(ROUNDS):
        enabled = min(enabled, replay_seconds(
            ensemble, MetricsRegistry(), train, stream))
        disabled = min(disabled, replay_seconds(
            ensemble, NullRegistry(), train, stream))
    return enabled, disabled


def test_enabled_telemetry_overhead_under_budget(save_artifact):
    train = make_series(1024)
    ensemble = fabricate_ensemble(train)
    stream = make_series(STREAM_LENGTH, seed=1)
    replay_seconds(ensemble, NullRegistry(), train, stream)  # warm-up

    overhead = float("inf")
    for attempt in range(ATTEMPTS):
        enabled, disabled = measured_overhead(ensemble, train, stream)
        overhead = min(overhead, enabled / disabled - 1.0)
        if overhead < ENABLED_BUDGET / 2:
            break

    rate = STREAM_LENGTH / disabled
    rendering = "\n".join([
        "Telemetry overhead on the fused serving path",
        f"  stream               {STREAM_LENGTH} observations, "
        f"micro-batch {MICRO_BATCH}, {N_MODELS} basic models",
        f"  disabled (Null)      {rate:10.0f} obs/s",
        f"  enabled  (registry)  {STREAM_LENGTH / enabled:10.0f} obs/s",
        f"  enabled overhead     {max(overhead, 0.0):10.2%} "
        f"(budget {ENABLED_BUDGET:.0%}, best of {attempt + 1} attempts)",
    ])
    print("\n" + rendering)
    save_artifact("obs_overhead", rendering)

    assert overhead < ENABLED_BUDGET, (
        f"live-registry telemetry costs {overhead:.1%} of fused "
        f"update_batch throughput (budget {ENABLED_BUDGET:.0%})")


def test_disabled_telemetry_guard_cost_negligible():
    """The disabled path's *entire* residual cost is ``if obs.enabled:``
    guards (plus two plain int adds in the fused workspace).  Bound it
    analytically — guard count per batch x measured per-guard cost vs
    measured batch time — instead of differencing two noisy timings."""
    train = make_series(1024)
    ensemble = fabricate_ensemble(train)
    stream = make_series(STREAM_LENGTH, seed=1)
    replay_seconds(ensemble, NullRegistry(), train, stream)  # warm-up
    disabled = min(replay_seconds(ensemble, NullRegistry(), train, stream)
                   for _ in range(ROUNDS))

    # Per-guard cost: attribute load + branch on the shared no-op
    # telemetry object, exactly the expression the hot loops evaluate.
    with use_registry(NullRegistry()):
        probe = StreamingDetector(ensemble, history=WINDOW)
    obs = probe._obs
    assert not obs.enabled
    iterations = 200_000
    tick = time.perf_counter()
    hits = 0
    for _ in range(iterations):
        if obs.enabled:
            hits += 1
    guard_seconds = (time.perf_counter() - tick) / iterations
    assert hits == 0

    # Guards evaluated per micro-batch: two at update_batch entry/exit,
    # two per drift-ingest observation, and two per fused chunk (the
    # chunk loop covers all MICRO_BATCH windows; CHUNK_TARGET_ROWS
    # bounds rows = models x chunk).
    scorer = ensemble.prepare_fused()
    n_chunks = -(-MICRO_BATCH // scorer._chunk_size(N_MODELS, MICRO_BATCH))
    guards_per_batch = 2 + 2 * MICRO_BATCH + 2 * n_chunks
    n_batches = -(-STREAM_LENGTH // MICRO_BATCH)
    guard_total = guard_seconds * guards_per_batch * n_batches

    fraction = guard_total / disabled
    print(f"\ndisabled-telemetry guard cost: {guard_seconds * 1e9:.0f} ns "
          f"per guard, {guards_per_batch} guards/batch "
          f"-> {fraction:.3%} of replay time (budget {DISABLED_BUDGET:.0%})")
    assert fraction < DISABLED_BUDGET, (
        f"NullRegistry guards cost {fraction:.2%} of the disabled replay "
        f"(budget {DISABLED_BUDGET:.0%})")
