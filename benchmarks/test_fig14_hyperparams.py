"""Bench E-F14: regenerate Figure 14 (unsupervised β / λ selection).

Shape checks: every candidate records a positive validation reconstruction
error, the curves are error-ordered, and the median pick is never the
worst candidate by PR (the paper's argument: the median rule is "balanced
between the best and worst cases")."""

import numpy as np

from repro.experiments import figure_14
import pytest

pytestmark = pytest.mark.slow  # paper-artifact regeneration: full runs only


def test_figure14(benchmark, bench_budget, save_artifact):
    result = benchmark.pedantic(
        lambda: figure_14(budget=bench_budget, seed=0, datasets=("ecg",),
                          beta_values=(0.1, 0.5, 0.9),
                          lambda_values=(1.0, 8.0, 64.0)),
        rounds=1, iterations=1)
    save_artifact("figure14", result.rendering)

    for parameter in ("beta", "lambda"):
        sweep = result.data["ecg"][parameter]
        records = sweep["records"]
        errors = [r["reconstruction_error"] for r in records]
        assert all(e > 0 for e in errors)
        assert errors == sorted(errors)            # error-ordered
        pr_values = [r["pr"] for r in records]
        median_pr = records[sweep["median_index"]]["pr"]
        assert median_pr >= min(pr_values), parameter
        # The median pick must be a real candidate value.
        assert sweep["median_value"] in [r["value"] for r in records]
