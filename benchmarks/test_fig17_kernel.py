"""Bench E-F17: regenerate Figure 17 (kernel-size insensitivity).

Shape check — the figure's claim: accuracy is insensitive to the kernel
size.  The PR and ROC spread across kernel sizes must stay small relative
to the metric's level."""

import numpy as np

from repro.experiments import figure_17
import pytest

pytestmark = pytest.mark.slow  # paper-artifact regeneration: full runs only


def test_figure17(benchmark, bench_budget, save_artifact):
    result = benchmark.pedantic(
        lambda: figure_17(budget=bench_budget, seed=0, datasets=("ecg",),
                          kernel_sizes=(3, 5, 7, 9)),
        rounds=1, iterations=1)
    save_artifact("figure17", result.rendering)

    data = result.data["ecg"]
    for metric in ("PR", "ROC"):
        values = np.array(data[metric])
        assert len(values) == 4
        spread = values.max() - values.min()
        assert spread <= 0.25, \
            f"{metric} too sensitive to kernel size: {values}"
