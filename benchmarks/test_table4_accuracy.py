"""Bench E-T4: regenerate Table 4 (SMAP / WADI + overall averages).

Shape checks: CAE-Ensemble leads the overall PR ranking (the paper's
headline: best overall Precision, F1, PR and ROC), and WADI shows the
interval-label recall cap discussed in Section 4.2.1.
"""

from repro.experiments import table_4
import pytest

pytestmark = pytest.mark.slow  # paper-artifact regeneration: full runs only


def test_table4(benchmark, bench_budget, save_artifact):
    result = benchmark.pedantic(
        lambda: table_4(budget=bench_budget, seed=0), rounds=1, iterations=1)
    save_artifact("table4", result.rendering)

    overall = result.data["overall"]
    assert len(overall) == 12
    pr = {model: report.pr_auc for model, report in overall.items()}
    ranked = sorted(pr, key=pr.get, reverse=True)
    # Paper: CAE-Ensemble wins overall PR; allow top-3 under bench budget.
    assert ranked.index("CAE-Ensemble") < 3, f"overall PR ranking: {ranked}"
    assert pr["CAE-Ensemble"] > pr["RAE-Ensemble"]

    # WADI: whole intervals are labelled but only a short core deviates, so
    # recall at the best-F1 threshold stays structurally limited.
    wadi = result.data["results"]["wadi"]["CAE-Ensemble"].report
    assert wadi.recall < 0.9
