"""Bench E-F16: regenerate Figure 16 (effect of the number of basic models).

The paper shows a rising-then-flattening PR curve with ROC fluctuations
("sudden changes between cases", Section 4.2.6).  Under a CPU budget the
curve keeps the same shape but is noisier, so the checks are: the best
multi-model point is at least as good as the single model on PR, and
adding models never collapses accuracy.

This bench uses more epochs per basic model than the shared BENCH budget —
with heavily undertrained members the ensemble effect cannot appear, which
would test the budget rather than the paper's claim.
"""

import dataclasses

import numpy as np

from repro.experiments import figure_16
import pytest

pytestmark = pytest.mark.slow  # paper-artifact regeneration: full runs only


def test_figure16(benchmark, bench_budget, save_artifact):
    budget = dataclasses.replace(bench_budget, epochs=4, dataset_scale=0.3)
    result = benchmark.pedantic(
        lambda: figure_16(budget=budget, seed=0, datasets=("ecg",),
                          max_models=6),
        rounds=1, iterations=1)
    save_artifact("figure16", result.rendering)

    data = result.data["ecg"]
    pr = np.array(data["PR"])
    roc = np.array(data["ROC"])
    assert len(pr) == 6
    # Best multi-model point competitive with (or better than) one model.
    assert pr[1:].max() >= pr[0] - 0.02, f"PR curve {pr}"
    # Adding models never collapses accuracy.
    assert pr.min() >= pr[0] - 0.15
    assert roc.min() >= roc[0] - 0.15
