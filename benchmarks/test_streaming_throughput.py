"""Streaming throughput: scalar vs micro-batched vs fused updates.

The paper's Table 8 positions CAE-Ensemble as online-capable because each
arrival costs one forward pass.  The serving-layer question is *overhead*:
a forward pass per single observation wastes most of its time in Python
dispatch and small-matrix setup.  ``StreamingDetector.update_batch``
amortises that over a micro-batch of arrivals, and the fused inference
engine (:mod:`repro.core.fused`) collapses the remaining M per-model
passes into one batched pass.  This benchmark measures both effects —
micro-batching vs scalar updates, and fused vs unfused micro-batching —
and asserts each one is not a semantic change (identical/equivalent
scores).
"""

import time

import numpy as np

from repro.core import CAEConfig, CAEEnsemble, EnsembleConfig
from repro.streaming import StreamingDetector

STREAM_LENGTH = 384
MICRO_BATCH = 64
WINDOW = 16


def make_fitted_ensemble(bench_budget):
    rng = np.random.default_rng(0)
    t = np.arange(1024)
    train = np.stack([np.sin(2 * np.pi * t / 31),
                      np.cos(2 * np.pi * t / 47),
                      np.sin(2 * np.pi * t / 19)], axis=1)
    train = train + 0.05 * rng.standard_normal(train.shape)
    ensemble = CAEEnsemble(
        CAEConfig(input_dim=3, embed_dim=bench_budget.embed_dim,
                  window=WINDOW, n_layers=bench_budget.n_layers),
        EnsembleConfig(n_models=bench_budget.n_models,
                       epochs_per_model=bench_budget.epochs, seed=0,
                       max_training_windows=bench_budget
                       .max_training_windows))
    ensemble.fit(train)
    return ensemble, train


def make_stream(length=STREAM_LENGTH):
    rng = np.random.default_rng(1)
    t = np.arange(2048, 2048 + length)
    stream = np.stack([np.sin(2 * np.pi * t / 31),
                       np.cos(2 * np.pi * t / 47),
                       np.sin(2 * np.pi * t / 19)], axis=1)
    return stream + 0.05 * rng.standard_normal(stream.shape)


def replay_batched(detector, stream):
    tick = time.perf_counter()
    updates = []
    for start in range(0, len(stream), MICRO_BATCH):
        updates.extend(detector.update_batch(stream[start:start
                                                    + MICRO_BATCH]))
    return updates, time.perf_counter() - tick


def test_micro_batching_beats_scalar_updates(bench_budget, save_artifact):
    ensemble, train = make_fitted_ensemble(bench_budget)
    stream = make_stream()

    scalar = StreamingDetector(ensemble, history=WINDOW)
    scalar.warm_up(train[-(WINDOW - 1):])
    tick = time.perf_counter()
    scalar_updates = [scalar.update(observation) for observation in stream]
    scalar_seconds = time.perf_counter() - tick

    batched = StreamingDetector(ensemble, history=WINDOW)
    batched.warm_up(train[-(WINDOW - 1):])
    batched_updates, batched_seconds = replay_batched(batched, stream)

    # The per-model loop, same micro-batched replay, for the fused
    # speedup column (fused_inference is the serving default above).
    ensemble.fused_inference = False
    try:
        unfused = StreamingDetector(ensemble, history=WINDOW)
        unfused.warm_up(train[-(WINDOW - 1):])
        unfused_updates, unfused_seconds = replay_batched(unfused, stream)
    finally:
        ensemble.fused_inference = True

    # Micro-batching is an optimisation, not a semantic change...
    scalar_scores = np.array([u.score for u in scalar_updates])
    batched_scores = np.array([u.score for u in batched_updates])
    np.testing.assert_allclose(batched_scores, scalar_scores, rtol=1e-9)
    # ... and so is fusion (float32 inference dtype -> 1e-5 tolerance).
    unfused_scores = np.array([u.score for u in unfused_updates])
    np.testing.assert_allclose(batched_scores, unfused_scores, rtol=1e-5)

    scalar_rate = len(stream) / scalar_seconds
    batched_rate = len(stream) / batched_seconds
    unfused_rate = len(stream) / unfused_seconds
    speedup = batched_rate / scalar_rate
    fused_speedup = batched_rate / unfused_rate
    rendering = "\n".join([
        "Streaming throughput (observations/second)",
        f"  stream length        {len(stream)} observations, window "
        f"{WINDOW}, {ensemble.n_models} basic models",
        f"  scalar update()      {scalar_rate:10.0f} obs/s "
        f"({scalar_seconds / len(stream) * 1e3:.3f} ms/obs, fused)",
        f"  update_batch({MICRO_BATCH:>3})    {batched_rate:10.0f} obs/s "
        f"({batched_seconds / len(stream) * 1e3:.3f} ms/obs, fused)",
        f"  update_batch({MICRO_BATCH:>3})    {unfused_rate:10.0f} obs/s "
        f"({unfused_seconds / len(stream) * 1e3:.3f} ms/obs, unfused "
        f"per-model loop)",
        f"  micro-batch speedup  {speedup:10.1f}x (batched vs scalar)",
        f"  fused speedup        {fused_speedup:10.1f}x (batched fused "
        f"vs batched unfused; see BENCH_streaming.json for 40 models)",
    ])
    print("\n" + rendering)
    save_artifact("streaming_throughput", rendering)

    assert speedup > 1.5, (
        f"micro-batching should amortise per-call overhead, got only "
        f"{speedup:.2f}x ({scalar_rate:.0f} -> {batched_rate:.0f} obs/s)")
    # At the bench budget's M = 2 the fused win is small — assert parity
    # plus timer noise; the 40-model >=2x claim lives in tools/bench.py.
    assert fused_speedup > 0.8, (
        f"fused micro-batching should not lose to the per-model loop, "
        f"got {fused_speedup:.2f}x")
