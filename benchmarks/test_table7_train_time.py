"""Bench E-T7: regenerate Table 7 (training cost + ensemble/basic ratios).

The paper's efficiency claims decompose into (a) a parallelism argument —
the CAE has O(layers) sequential depth per window versus the RNN's O(w) —
and (b) a parameter-transfer argument — warm-started ensemble members
converge in fewer epochs, keeping CAE-Ensemble/CAE (paper avg 5.91) below
RAE-Ensemble/RAE (avg 7.82 ≈ M).  Claim (a)'s wall-clock consequence needs
parallel hardware, so here it is asserted on the sequential-depth metric;
claim (b) is asserted on both the epoch counts and the runtime ratios.
"""

import dataclasses

import numpy as np

from repro.experiments import table_7
import pytest

pytestmark = pytest.mark.slow  # paper-artifact regeneration: full runs only

DATASETS = ("ecg", "msl", "smap")


def test_table7(benchmark, bench_budget, save_artifact):
    budget = dataclasses.replace(bench_budget, epochs=6, n_models=3,
                                 dataset_scale=0.3)
    result = benchmark.pedantic(
        lambda: table_7(budget=budget, seed=0, datasets=DATASETS),
        rounds=1, iterations=1)
    save_artifact("table7", result.rendering)

    # (a) Parallelism: the convolutional family's sequential depth per
    # window is far below the recurrent family's and independent of w.
    depths = result.data["depths"]
    for dataset in DATASETS:
        assert depths["CAE"][dataset] < depths["RAE"][dataset] / 2
        assert depths["CAE-Ensemble"][dataset] == depths["CAE"][dataset]

    # (b) Transfer: ensembles cost more than one basic model, the RAE
    # ensemble costs ≈ M basic models, and the warm-started CAE ensemble
    # trains fewer total epochs per member than the cold-started one.
    ratios = result.data["ratios"]
    rae_ratios = [ratios["RAE-Ensemble/RAE"][d] for d in DATASETS]
    cae_ratios = [ratios["CAE-Ensemble/CAE"][d] for d in DATASETS]
    assert all(r > 1.5 for r in rae_ratios), rae_ratios
    assert all(r > 0.9 for r in cae_ratios), cae_ratios
    assert np.mean(cae_ratios) < np.mean(rae_ratios), \
        (cae_ratios, rae_ratios)

    epoch_ratios = result.data["epoch_ratios"]
    for dataset in DATASETS:
        assert epoch_ratios["CAE-Ensemble/CAE"][dataset] < \
            epoch_ratios["RAE-Ensemble/RAE"][dataset] + 1e-9, dataset
