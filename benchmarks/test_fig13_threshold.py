"""Bench E-F13: regenerate Figure 13 (top-K% threshold sensitivity).

Shape checks: Recall@K is monotone non-decreasing in K (more flagged →
at least as many true outliers caught) and precision and recall cross in
the vicinity of the true outlier ratio, which is the figure's message:
"choosing the outlier ratio as K is a good choice"."""

import numpy as np

from repro.experiments import figure_13
import pytest

pytestmark = pytest.mark.slow  # paper-artifact regeneration: full runs only


def test_figure13(benchmark, bench_budget, save_artifact):
    result = benchmark.pedantic(
        lambda: figure_13(budget=bench_budget, seed=0,
                          datasets=("ecg", "smap"),
                          k_values=(1, 2, 3, 5, 8, 10, 12, 15, 20)),
        rounds=1, iterations=1)
    save_artifact("figure13", result.rendering)

    for dataset_name, data in result.data.items():
        ks = np.array(data["k"], dtype=float)
        recall = np.array(data["Recall@K"])
        precision = np.array(data["Precision@K"])
        f1 = np.array(data["F1@K"])
        assert np.all(np.diff(recall) >= -1e-12), \
            f"{dataset_name}: recall not monotone {recall}"
        assert np.all((0 <= precision) & (precision <= 1))
        # F1 should peak near the true outlier ratio, not at the extremes.
        true_ratio = data["true_ratio_percent"]
        best_k = ks[int(np.argmax(f1))]
        assert abs(best_k - true_ratio) <= max(6.0, 0.75 * true_ratio), \
            f"{dataset_name}: best K {best_k} vs true ratio {true_ratio}"
