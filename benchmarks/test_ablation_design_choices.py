"""Ablation benches for the design choices DESIGN.md calls out beyond the
paper's own Table 5:

* median vs mean ensemble aggregation (Eq. 15's justification);
* parameter transfer on/off — wall-clock and accuracy;
* per-layer attention vs last-layer-only attention (extension study);
* point-wise vs point-adjusted evaluation on WADI-style interval labels
  (quantifying the Section 4.2.1 recall discussion).
"""

import dataclasses

import numpy as np

from repro.core import CAEConfig, CAEEnsemble, EnsembleConfig
from repro.datasets import load_dataset
from repro.experiments.reporting import format_table
import pytest

from repro.metrics import (accuracy_report, evaluate_at_ratio,
                           point_adjusted_prf, pr_auc)

pytestmark = pytest.mark.slow  # paper-artifact regeneration: full runs only


def _config(dataset, budget, **overrides):
    cae = CAEConfig(input_dim=dataset.dims, embed_dim=budget.embed_dim,
                    window=16, n_layers=budget.n_layers)
    defaults = dict(n_models=3, epochs_per_model=3,
                    diversity_weight=2.0, transfer_fraction=0.5,
                    max_training_windows=budget.max_training_windows,
                    seed=0)
    defaults.update(overrides)
    return cae, EnsembleConfig(**defaults)


def test_aggregation_median_vs_mean(benchmark, bench_budget, save_artifact):
    """Eq. 15 uses the median 'because it reduces the influence of
    overfitted basic models'.  Check both run and report the comparison;
    the robust claim is that median stays within noise of mean or better
    on the contaminated ECG set (train == test, outliers included)."""
    dataset = load_dataset("ecg", scale=0.3)

    def run():
        results = {}
        for aggregation in ("median", "mean"):
            cae, config = _config(dataset, bench_budget)
            config = dataclasses.replace(config, aggregation=aggregation)
            model = CAEEnsemble(cae, config).fit(dataset.train)
            scores = model.score(dataset.test)
            results[aggregation] = accuracy_report(dataset.test_labels,
                                                   scores)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, report.precision, report.recall, report.f1,
             report.pr_auc, report.roc_auc]
            for name, report in results.items()]
    save_artifact("ablation_aggregation", format_table(
        ["Aggregation", "Precision", "Recall", "F1", "PR", "ROC"], rows,
        title="[ablation] Median vs mean ensemble aggregation (ECG)"))
    assert results["median"].pr_auc >= results["mean"].pr_auc - 0.1


def test_transfer_on_off(benchmark, bench_budget, save_artifact):
    """Parameter transfer (Fig. 9) warm-starts later models.  With early
    stopping enabled, transfer must reduce total epochs trained while
    keeping accuracy within noise."""
    dataset = load_dataset("ecg", scale=0.3)

    def run():
        results = {}
        for beta in (0.0, 0.5):
            cae, config = _config(dataset, bench_budget,
                                  transfer_fraction=beta,
                                  epochs_per_model=6)
            config = dataclasses.replace(config, early_stop_tolerance=0.05)
            model = CAEEnsemble(cae, config).fit(dataset.train)
            scores = model.score(dataset.test)
            results[beta] = {
                "epochs": len(model.history),
                "seconds": model.train_seconds_,
                "pr": pr_auc(dataset.test_labels, scores)}
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[f"beta={beta}", values["epochs"],
             round(values["seconds"], 2), values["pr"]]
            for beta, values in results.items()]
    save_artifact("ablation_transfer", format_table(
        ["Variant", "Total epochs", "Seconds", "PR"], rows,
        title="[ablation] Parameter transfer on/off (ECG, early stopping)"))
    assert results[0.5]["epochs"] <= results[0.0]["epochs"]
    assert results[0.5]["pr"] >= results[0.0]["pr"] - 0.15


def test_point_adjust_on_interval_labels(benchmark, bench_budget,
                                         save_artifact):
    """Section 4.2.1: WADI labels whole intervals although only a short
    core deviates, capping point-wise recall.  Point-adjusted evaluation
    must recover a large recall gap — quantifying the paper's Figures
    11-12 argument."""
    dataset = load_dataset("wadi", scale=0.25)

    def run():
        cae, config = _config(dataset, bench_budget, diversity_weight=1.0,
                              transfer_fraction=0.5)
        model = CAEEnsemble(cae, config).fit(dataset.train)
        scores = model.score(dataset.test)
        raw = evaluate_at_ratio(dataset.test_labels, scores,
                                dataset.outlier_ratio)
        predictions = (scores > raw.threshold).astype(int)
        adjusted = point_adjusted_prf(dataset.test_labels, predictions)
        return raw, adjusted

    raw, adjusted = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact("ablation_point_adjust", format_table(
        ["Protocol", "Precision", "Recall", "F1"],
        [["point-wise", raw.precision, raw.recall, raw.f1],
         ["point-adjusted", adjusted[0], adjusted[1], adjusted[2]]],
        title="[ablation] WADI interval labels: point-wise vs "
              "point-adjusted"))
    # The structural claim: adjusting for interval labels lifts recall
    # substantially above the point-wise value.
    assert adjusted[1] >= raw.recall
    assert adjusted[1] - raw.recall > 0.1 or raw.recall > 0.8
