"""Bench E-T5: regenerate Table 5 (ablation study on ECG and SMAP).

At paper scale the full CAE-Ensemble wins nearly every cell.  Under a CPU
bench budget the gaps compress, so the asserted shape is the robust core
of the claim: the full model is never dominated — it beats the weakest
ablation and stays within a small margin of the strongest one on both the
threshold-free PR metric and F1."""

import dataclasses

import numpy as np

from repro.experiments import table_5
import pytest

pytestmark = pytest.mark.slow  # paper-artifact regeneration: full runs only


def test_table5(benchmark, bench_budget, save_artifact):
    budget = dataclasses.replace(bench_budget, epochs=4, dataset_scale=0.3)
    result = benchmark.pedantic(
        lambda: table_5(budget=budget, seed=0), rounds=1, iterations=1)
    save_artifact("table5", result.rendering)

    for dataset_name, variants in result.data.items():
        assert set(variants) == {"No attention", "No diversity",
                                 "No ensemble", "No re-scaling",
                                 "CAE-Ensemble"}
        for metric in ("pr_auc", "f1"):
            full = getattr(variants["CAE-Ensemble"], metric)
            ablated = [getattr(report, metric)
                       for variant, report in variants.items()
                       if variant != "CAE-Ensemble"]
            assert full >= min(ablated) - 1e-9, \
                f"{dataset_name}/{metric}: full {full} vs {ablated}"
            assert full >= 0.8 * max(ablated), \
                f"{dataset_name}/{metric}: full {full} vs best " \
                f"{max(ablated)}"
